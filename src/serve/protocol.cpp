#include "serve/protocol.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>
#include <utility>

#include "model/options.hpp"
#include "serve/fingerprint.hpp"
#include "util/cli.hpp"

namespace spmvcache {

namespace {

/// Nesting bound: a hostile request must not recurse the parser off the
/// stack. Real requests are depth 2 (object with one array).
constexpr int kMaxJsonDepth = 32;

/// Recursive-descent JSON parser over a bounded string_view.
class JsonParser {
public:
    explicit JsonParser(std::string_view input) : input_(input) {}

    [[nodiscard]] Result<Json> parse() {
        Result<Json> value = parse_value(0);
        if (!value.ok()) return value;
        skip_whitespace();
        if (pos_ != input_.size())
            return fail("trailing garbage after JSON value");
        return value;
    }

private:
    [[nodiscard]] Error fail(const std::string& message) const {
        return Error(ErrorCode::ParseError,
                     message + " at byte " + std::to_string(pos_));
    }

    void skip_whitespace() {
        while (pos_ < input_.size() &&
               (input_[pos_] == ' ' || input_[pos_] == '\t' ||
                input_[pos_] == '\r' || input_[pos_] == '\n'))
            ++pos_;
    }

    [[nodiscard]] bool consume(char expected) {
        if (pos_ < input_.size() && input_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return false;
    }

    [[nodiscard]] bool consume_word(std::string_view word) {
        if (input_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    [[nodiscard]] Result<Json> parse_value(int depth) {
        if (depth > kMaxJsonDepth) return fail("nesting too deep");
        skip_whitespace();
        if (pos_ >= input_.size()) return fail("unexpected end of input");
        const char c = input_[pos_];
        if (c == '{') return parse_object(depth);
        if (c == '[') return parse_array(depth);
        if (c == '"') return parse_string_value();
        if (c == 't' || c == 'f') return parse_bool();
        if (c == 'n') {
            if (!consume_word("null")) return fail("bad literal");
            return Json{};
        }
        return parse_number();
    }

    [[nodiscard]] Result<Json> parse_bool() {
        Json value;
        value.kind = Json::Kind::Bool;
        if (consume_word("true")) {
            value.boolean = true;
            return value;
        }
        if (consume_word("false")) {
            value.boolean = false;
            return value;
        }
        return fail("bad literal");
    }

    [[nodiscard]] Result<std::string> parse_string() {
        if (!consume('"')) return fail("expected '\"'");
        std::string out;
        while (pos_ < input_.size()) {
            const char c = input_[pos_];
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= input_.size()) break;
                const char esc = input_[pos_];
                ++pos_;
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        // Accept \uXXXX but only map the ASCII range; the
                        // protocol never emits non-ASCII and requests that
                        // do are preserved as '?' rather than rejected.
                        if (pos_ + 4 > input_.size())
                            return fail("truncated \\u escape");
                        std::uint32_t cp = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = input_[pos_ + static_cast<std::size_t>(i)];
                            cp <<= 4;
                            if (h >= '0' && h <= '9')
                                cp |= static_cast<std::uint32_t>(h - '0');
                            else if (h >= 'a' && h <= 'f')
                                cp |= static_cast<std::uint32_t>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F')
                                cp |= static_cast<std::uint32_t>(h - 'A' + 10);
                            else
                                return fail("bad \\u escape");
                        }
                        pos_ += 4;
                        out += cp < 0x80 ? static_cast<char>(cp) : '?';
                        break;
                    }
                    default: return fail("bad escape character");
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    [[nodiscard]] Result<Json> parse_string_value() {
        Result<std::string> s = parse_string();
        if (!s.ok()) return std::move(s).to_error();
        Json value;
        value.kind = Json::Kind::String;
        value.text = std::move(s).value();
        return value;
    }

    [[nodiscard]] Result<Json> parse_number() {
        const std::size_t start = pos_;
        if (pos_ < input_.size() && (input_[pos_] == '-' || input_[pos_] == '+'))
            ++pos_;
        while (pos_ < input_.size() &&
               ((input_[pos_] >= '0' && input_[pos_] <= '9') ||
                input_[pos_] == '.' || input_[pos_] == 'e' ||
                input_[pos_] == 'E' || input_[pos_] == '-' ||
                input_[pos_] == '+'))
            ++pos_;
        const std::string_view raw = input_.substr(start, pos_ - start);
        if (raw.empty()) return fail("expected a JSON value");
        Result<double> parsed = parse_double(raw);
        if (!parsed.ok())
            return std::move(parsed)
                .wrap("parsing JSON number '" + std::string(raw) + "'")
                .to_error();
        Json value;
        value.kind = Json::Kind::Number;
        value.number = parsed.value();
        value.text = std::string(raw);
        return value;
    }

    [[nodiscard]] Result<Json> parse_array(int depth) {
        if (!consume('[')) return fail("expected '['");
        Json value;
        value.kind = Json::Kind::Array;
        skip_whitespace();
        if (consume(']')) return value;
        while (true) {
            Result<Json> element = parse_value(depth + 1);
            if (!element.ok()) return element;
            value.items.push_back(std::move(element).value());
            skip_whitespace();
            if (consume(']')) return value;
            if (!consume(',')) return fail("expected ',' or ']'");
        }
    }

    [[nodiscard]] Result<Json> parse_object(int depth) {
        if (!consume('{')) return fail("expected '{'");
        Json value;
        value.kind = Json::Kind::Object;
        skip_whitespace();
        if (consume('}')) return value;
        while (true) {
            skip_whitespace();
            Result<std::string> key = parse_string();
            if (!key.ok()) return std::move(key).to_error();
            skip_whitespace();
            if (!consume(':')) return fail("expected ':'");
            Result<Json> member = parse_value(depth + 1);
            if (!member.ok()) return member;
            value.members.emplace_back(std::move(key).value(),
                                       std::move(member).value());
            skip_whitespace();
            if (consume('}')) return value;
            if (!consume(',')) return fail("expected ',' or '}'");
        }
    }

    std::string_view input_;
    std::size_t pos_ = 0;
};

/// Pulls an optional integer member into `out` (type-checked).
[[nodiscard]] Status read_int_member(const Json& object,
                                     const std::string& key,
                                     std::int64_t& out) {
    const Json* member = object.find(key);
    if (member == nullptr) return OkStatus();
    Result<std::int64_t> value = member->to_int64();
    if (!value.ok())
        return std::move(value).wrap("field '" + key + "'").to_error();
    out = value.value();
    return OkStatus();
}

}  // namespace

const Json* Json::find(const std::string& key) const noexcept {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [name, value] : members)
        if (name == key) return &value;
    return nullptr;
}

[[nodiscard]] Result<std::int64_t> Json::to_int64() const {
    if (kind != Kind::Number)
        return Error(ErrorCode::ValidationError, "expected a number");
    Result<std::int64_t> exact = parse_int(text);
    if (exact.ok()) return exact;
    if (std::nearbyint(number) != number ||
        std::fabs(number) > 9.2e18)
        return Error(ErrorCode::ValidationError,
                     "expected an integer, got '" + text + "'");
    return static_cast<std::int64_t>(number);
}

[[nodiscard]] Result<Json> parse_json(std::string_view input) {
    return JsonParser(input).parse();
}

std::string json_quote(const std::string& s) {
    std::string out = "\"";
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    out += '"';
    return out;
}

std::string json_double(double value) {
    if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
    char buf[64];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), value);
    if (ec != std::errc{}) return "null";
    std::string out(buf, ptr);
    // Bare integers ("42") stay valid JSON numbers; nothing more needed.
    return out;
}

const char* to_string(RequestOp op) noexcept {
    switch (op) {
        case RequestOp::Predict: return "predict";
        case RequestOp::Tune: return "tune";
        case RequestOp::Stats: return "stats";
        case RequestOp::Health: return "health";
        case RequestOp::Shutdown: return "shutdown";
    }
    return "unknown";
}

[[nodiscard]] Result<ServeRequest> parse_request(const std::string& line) {
    Result<Json> parsed = parse_json(line);
    if (!parsed.ok())
        return std::move(parsed).wrap("parsing request").to_error();
    const Json& root = parsed.value();
    if (root.kind != Json::Kind::Object)
        return Error(ErrorCode::ParseError,
                     "request must be a JSON object");

    ServeRequest request;
    if (const Json* id = root.find("id"); id != nullptr) {
        if (id->kind != Json::Kind::String)
            return Error(ErrorCode::ValidationError,
                         "field 'id' must be a string");
        request.id = id->text;
    }

    const Json* op = root.find("op");
    if (op == nullptr || op->kind != Json::Kind::String)
        return Error(ErrorCode::ValidationError,
                     "request needs a string field 'op' "
                     "(predict|tune|stats|health|shutdown)");
    if (op->text == "predict") request.op = RequestOp::Predict;
    else if (op->text == "tune") request.op = RequestOp::Tune;
    else if (op->text == "stats") request.op = RequestOp::Stats;
    else if (op->text == "health") request.op = RequestOp::Health;
    else if (op->text == "shutdown") request.op = RequestOp::Shutdown;
    else
        return Error(ErrorCode::ValidationError,
                     "unknown op '" + op->text + "'");

    if (const Json* matrix = root.find("matrix"); matrix != nullptr) {
        if (matrix->kind != Json::Kind::String)
            return Error(ErrorCode::ValidationError,
                         "field 'matrix' must be a string path");
        request.source.path = matrix->text;
    }
    if (const Json* gen = root.find("gen"); gen != nullptr) {
        if (gen->kind != Json::Kind::String)
            return Error(ErrorCode::ValidationError,
                         "field 'gen' must be a FAMILY:N spec string");
        request.source.gen_spec = gen->text;
    }
    if (!request.source.path.empty() && !request.source.gen_spec.empty())
        return Error(ErrorCode::ValidationError,
                     "give either 'matrix' or 'gen', not both");
    if (const Json* strict = root.find("strict"); strict != nullptr) {
        if (strict->kind != Json::Kind::Bool)
            return Error(ErrorCode::ValidationError,
                         "field 'strict' must be a bool");
        request.source.strict_parse = strict->boolean;
    }
    if (const Json* width = root.find("width"); width != nullptr) {
        if (width->kind != Json::Kind::String)
            return Error(ErrorCode::ValidationError,
                         "field 'width' must be \"auto\", \"32\" or \"64\"");
        Result<IndexWidthChoice> choice =
            parse_index_width_choice(width->text);
        if (!choice.ok())
            return std::move(choice)
                .wrap("parsing field 'width'")
                .to_error();
        request.source.index_width = choice.value();
    }

    std::int64_t seed = 42;
    SPMV_RETURN_IF_ERROR(read_int_member(root, "seed", seed));
    request.source.seed = static_cast<std::uint64_t>(seed);
    SPMV_RETURN_IF_ERROR(read_int_member(root, "threads", request.threads));
    SPMV_RETURN_IF_ERROR(read_int_member(root, "jobs", request.jobs));
    if (request.threads < 1 || request.threads > 4096)
        return Error(ErrorCode::ValidationError,
                     "field 'threads' out of range [1, 4096]");
    if (request.jobs < 0 || request.jobs > 4096)
        return Error(ErrorCode::ValidationError,
                     "field 'jobs' out of range [0, 4096]");

    if (const Json* method = root.find("method"); method != nullptr) {
        if (method->kind != Json::Kind::String ||
            (method->text != "a" && method->text != "b"))
            return Error(ErrorCode::ValidationError,
                         "field 'method' must be \"a\" or \"b\"");
        request.method = method->text;
    }

    if (const Json* timeout = root.find("timeout"); timeout != nullptr) {
        if (timeout->kind != Json::Kind::Number)
            return Error(ErrorCode::ValidationError,
                         "field 'timeout' must be a number of seconds");
        request.timeout_seconds = timeout->number;
    }

    if (const Json* approx = root.find("approx"); approx != nullptr) {
        if (approx->kind == Json::Kind::Bool) {
            request.sample_rate = approx->boolean ? 0.01 : 1.0;
        } else if (approx->kind == Json::Kind::Number) {
            if (!(approx->number > 0.0 && approx->number <= 1.0))
                return Error(ErrorCode::ValidationError,
                             "field 'approx' must be a rate in (0, 1]");
            request.sample_rate = approx->number;
        } else {
            return Error(ErrorCode::ValidationError,
                         "field 'approx' must be a bool or a rate in "
                         "(0, 1]");
        }
    }

    if (const Json* ways = root.find("l2_ways"); ways != nullptr) {
        if (ways->kind != Json::Kind::Array)
            return Error(ErrorCode::ValidationError,
                         "field 'l2_ways' must be an array of way counts");
        for (const Json& way : ways->items) {
            Result<std::int64_t> value = way.to_int64();
            if (!value.ok())
                return std::move(value).wrap("field 'l2_ways'").to_error();
            if (value.value() < 1 || value.value() > 15)
                return Error(ErrorCode::ValidationError,
                             "l2_ways entries must be in [1, 15]");
            request.l2_ways.push_back(
                static_cast<std::uint32_t>(value.value()));
        }
        if (request.l2_ways.size() > 16)
            return Error(ErrorCode::ValidationError,
                         "at most 16 l2_ways entries per request");
    }

    const bool needs_matrix = request.op == RequestOp::Predict ||
                              request.op == RequestOp::Tune ||
                              request.op == RequestOp::Stats;
    if (needs_matrix && request.source.empty())
        return Error(ErrorCode::ValidationError,
                     std::string("op '") + to_string(request.op) +
                         "' needs a 'matrix' path or 'gen' spec");
    return request;
}

std::string render_response(const ServeResponse& response) {
    std::string out = "{\"id\":" + json_quote(response.id);
    out += ",\"op\":" + json_quote(response.op);
    out += ",\"ok\":";
    out += response.ok ? "true" : "false";
    out += ",\"code\":";
    out += json_quote(to_string(response.code));
    if (!response.ok) out += ",\"error\":" + json_quote(response.error);
    out += ",\"cache_hit\":";
    out += response.cache_hit ? "true" : "false";
    out += ",\"retries\":" + std::to_string(response.retries);
    out += ",\"seconds\":" + json_double(response.seconds);
    out += ",\"sample_rate\":" + json_double(response.sample_rate);
    if (!response.payload.empty()) out += ",\"payload\":" + response.payload;
    out += "}";
    return out;
}

namespace {

void append_config_array(std::string& out, const ModelResult& result) {
    out += "\"configs\":[";
    for (std::size_t i = 0; i < result.configs.size(); ++i) {
        const ConfigPrediction& c = result.configs[i];
        if (i > 0) out += ',';
        out += "{\"l2_sector_ways\":" + std::to_string(c.l2_sector_ways);
        out += ",\"l2_misses\":" + json_double(c.l2_misses);
        out += ",\"l2_x_misses\":" + json_double(c.l2_x_misses);
        out += '}';
    }
    out += ']';
}

void append_fingerprint(std::string& out, const MatrixFingerprint& fp) {
    out += "\"fingerprint\":" + json_quote(to_string(fp));
    out += ",\"rows\":" + std::to_string(fp.rows);
    out += ",\"cols\":" + std::to_string(fp.cols);
    out += ",\"nnz\":" + std::to_string(fp.nnz);
}

/// What the model actually did (cached payloads must say whether their
/// numbers are exact or SHARDS estimates, because cache hits replay them
/// verbatim for the lifetime of the plan).
void append_sampling(std::string& out, const ModelResult& result) {
    out += ",\"sampled\":";
    out += result.sampled ? "true" : "false";
    out += ",\"sample_rate\":" + json_double(result.sample_rate);
    out += ",\"sampled_refs\":" + std::to_string(result.sampled_refs);
}

}  // namespace

std::string render_predict_payload(const ModelResult& result,
                                   const MatrixFingerprint& fp,
                                   const std::string& method,
                                   std::int64_t threads) {
    std::string out = "{";
    append_fingerprint(out, fp);
    out += ",\"method\":" + json_quote(method);
    out += ",\"threads\":" + std::to_string(threads);
    append_sampling(out, result);
    out += ",\"x_traffic_fraction\":" +
           json_double(result.x_traffic_fraction);
    out += ',';
    append_config_array(out, result);
    out += '}';
    return out;
}

std::string render_tune_payload(const ModelResult& result,
                                const MatrixFingerprint& fp,
                                std::int64_t threads) {
    const ConfigPrediction* best = &result.configs.front();
    for (const ConfigPrediction& config : result.configs)
        if (config.l2_misses < best->l2_misses) best = &config;
    const double baseline = result.configs.front().l2_misses;
    const double reduction =
        baseline > 0.0
            ? 100.0 * (baseline - best->l2_misses) / baseline
            : 0.0;
    std::string out = "{";
    append_fingerprint(out, fp);
    out += ",\"threads\":" + std::to_string(threads);
    append_sampling(out, result);
    out += ",\"best_l2_ways\":" + std::to_string(best->l2_sector_ways);
    out += ",\"best_l2_misses\":" + json_double(best->l2_misses);
    out += ",\"predicted_reduction_percent\":" + json_double(reduction);
    out += ',';
    append_config_array(out, result);
    out += '}';
    return out;
}

std::string render_stats_payload(const MatrixStats& stats,
                                 const MatrixFingerprint& fp) {
    std::string out = "{";
    append_fingerprint(out, fp);
    out += ",\"mean_nnz_per_row\":" + json_double(stats.mean_nnz_per_row);
    out += ",\"stddev_nnz_per_row\":" +
           json_double(stats.stddev_nnz_per_row);
    out += ",\"cv_nnz_per_row\":" + json_double(stats.cv_nnz_per_row);
    out += ",\"max_nnz_per_row\":" + std::to_string(stats.max_nnz_per_row);
    out += ",\"empty_rows\":" + std::to_string(stats.empty_rows);
    out += ",\"bandwidth\":" + std::to_string(stats.bandwidth);
    out += ",\"matrix_bytes\":" + std::to_string(stats.matrix_bytes);
    out += ",\"working_set_bytes\":" +
           std::to_string(stats.working_set_bytes);
    out += ",\"index_width\":";
    out += stats.index_width == IndexWidth::W64 ? "64" : "32";
    out += ",\"width32_ok\":";
    out += stats.width32_ok ? "true" : "false";
    out += '}';
    return out;
}

[[nodiscard]] Result<bool> read_line_bounded(std::istream& in, std::string& out,
                               std::size_t max_bytes) {
    out.clear();
    char c = 0;
    while (in.get(c)) {
        if (c == '\n') return true;
        if (out.size() >= max_bytes) {
            // Oversized: discard the rest of the line so the next read
            // starts on a fresh request, then report the typed error.
            while (in.get(c) && c != '\n') {
            }
            return Error(ErrorCode::ValidationError,
                         "request line exceeds " +
                             std::to_string(max_bytes) + " bytes");
        }
        out += c;
    }
    // Stream ended (EOF, or EINTR from a drain signal): a non-empty
    // partial line without a newline is still handed to the caller.
    return !out.empty();
}

}  // namespace spmvcache
