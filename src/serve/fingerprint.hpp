// Moved to sparse/fingerprint.hpp so the binary matrix cache
// (sparse/binary_cache.hpp) can embed the fingerprint in `.spmvc` headers
// without the sparse layer depending on serve. This forwarder keeps the
// historical include path working for serve-side callers.
#pragma once

#include "sparse/fingerprint.hpp"
