#include "serve/plan_cache.hpp"

#include "util/error.hpp"

namespace spmvcache {

PlanCache::PlanCache(std::uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
    counters_.capacity_bytes = capacity_bytes;
}

std::optional<std::string> PlanCache::get(const PlanKey& key) {
    const MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++counters_.misses;
        return std::nullopt;
    }
    // Refresh: splice the entry to the front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second);
    ++counters_.hits;
    return it->second->payload;
}

void PlanCache::put(const PlanKey& key, std::string payload) {
    const MutexLock lock(mutex_);
    if (payload.size() > capacity_bytes_) return;  // can never fit
    if (const auto it = index_.find(key); it != index_.end()) {
        bytes_ -= it->second->payload.size();
        bytes_ += payload.size();
        it->second->payload = std::move(payload);
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        bytes_ += payload.size();
        lru_.push_front(Entry{key, std::move(payload)});
        index_.emplace(key, lru_.begin());
        ++counters_.insertions;
    }
    evict_to_cap_locked();
}

void PlanCache::evict_to_cap_locked() {
    while (bytes_ > capacity_bytes_ && !lru_.empty()) {
        const Entry& victim = lru_.back();
        bytes_ -= victim.payload.size();
        index_.erase(victim.key);
        lru_.pop_back();
        ++counters_.evictions;
    }
}

PlanCacheStats PlanCache::stats() const {
    const MutexLock lock(mutex_);
    PlanCacheStats out = counters_;
    out.entries = lru_.size();
    out.bytes = bytes_;
    return out;
}

Quarantine::Quarantine(int strike_limit) : strike_limit_(strike_limit) {
    SPMV_EXPECTS(strike_limit >= 1);
}

std::optional<Error> Quarantine::check(std::uint64_t key) {
    const MutexLock lock(mutex_);
    const auto it = records_.find(key);
    if (it == records_.end() || it->second.strikes < strike_limit_)
        return std::nullopt;
    ++counters_.fast_failed;
    return Error(it->second.last_error)
        .wrap("quarantined after " + std::to_string(it->second.strikes) +
              " failures");
}

int Quarantine::record_failure(std::uint64_t key, const Error& error) {
    const MutexLock lock(mutex_);
    Record& record = records_[key];
    ++record.strikes;
    record.last_error = error;
    ++counters_.strikes;
    if (record.strikes == strike_limit_) ++counters_.quarantined;
    return record.strikes;
}

void Quarantine::record_success(std::uint64_t key) {
    const MutexLock lock(mutex_);
    const auto it = records_.find(key);
    if (it == records_.end()) return;
    if (it->second.strikes >= strike_limit_ && counters_.quarantined > 0)
        --counters_.quarantined;
    records_.erase(it);
}

QuarantineStats Quarantine::stats() const {
    const MutexLock lock(mutex_);
    QuarantineStats out = counters_;
    out.tracked = records_.size();
    return out;
}

}  // namespace spmvcache
