// `spmvcache serve` — the fault-tolerant prediction daemon.
//
// A Server owns a ThreadPool, a fingerprint-keyed PlanCache, and a
// Quarantine, and pumps a JSONL request loop (protocol.hpp) from an
// istream to an ostream. The robustness contract, in one place:
//
//   * bounded admission — at most `queue_capacity` matrix requests are
//     queued or executing; beyond that a request is rejected immediately
//     with a typed OverloadedError (backpressure, never unbounded memory)
//   * per-request deadlines — every request runs under the shared
//     wall-clock mechanism (core/deadline.hpp); expiry abandons the work
//     on a detached thread and answers TimeoutError
//   * retry with exponential backoff — transient failures (ResourceError,
//     injected faults) are retried up to `max_retries` times
//   * quarantine — a source / fingerprint that keeps failing fast-fails
//     with its cached error after `quarantine_strikes` strikes
//   * graceful drain — EOF, `shutdown`, SIGINT or SIGTERM all stop
//     admission, finish in-flight requests, and flush a final stats
//     report; the daemon never dies mid-response
//   * health is always answerable — `health` runs on the loop thread,
//     not the bounded queue, so a saturated daemon still reports
//   * no repeated ingestion — loaded matrices are memoized in a
//     SourceCache (stat-revalidated), so repeat requests for the same
//     source skip file I/O and re-fingerprinting entirely; with a
//     cache_dir the first load itself goes through the .spmvc mmap path
//
// Fault points (util/fault.hpp): serve.accept fires at admission,
// serve.execute inside the worker (transient → exercises the retry path),
// serve.cache on plan-cache insertion (failure degrades to recompute).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "serve/plan_cache.hpp"
#include "serve/protocol.hpp"
#include "sync/thread_pool.hpp"
#include "util/annotated_mutex.hpp"
#include "util/timer.hpp"

namespace spmvcache {

/// Daemon knobs (all have serving-scale defaults; the CLI maps flags 1:1).
struct ServeOptions {
    /// Pool workers executing matrix requests (>= 1).
    std::int64_t workers = 2;
    /// Max matrix requests queued or executing before OverloadedError.
    std::size_t queue_capacity = 64;
    /// Plan-cache hard cap in payload bytes (0 disables caching).
    std::uint64_t cache_capacity_bytes = std::uint64_t{64} << 20;
    /// Strikes before a failing source/fingerprint fast-fails.
    int quarantine_strikes = 3;
    /// Default per-request wall-clock budget (seconds; <= 0 = none);
    /// individual requests override via their "timeout" field.
    double default_timeout_seconds = 0.0;
    /// Transient-failure retries per request (0 disables retry).
    int max_retries = 2;
    /// First backoff sleep; doubles per retry (capped at 1 s).
    double backoff_initial_seconds = 0.01;
    /// Reject request lines longer than this many bytes.
    std::size_t max_request_bytes = std::size_t{1} << 20;
    /// Test/bench hook: artificial seconds of work per execution, so
    /// backpressure and drain are observable deterministically.
    double execute_delay_seconds = 0.0;
    /// Directory for `.spmvc` binary cache entries (core/matrix_source);
    /// empty disables the on-disk cache (loads still dedupe in memory).
    std::string cache_dir;
    /// Parser workers on a cache miss (1 serial, 0 all cores, N > 1 = N).
    std::int64_t parse_jobs = 1;
    /// Loaded matrices kept resident in the in-memory source cache.
    std::size_t source_cache_entries = 8;
};

/// Aggregate daemon counters (snapshot; also embedded in `health`).
struct ServeStats {
    std::uint64_t requests = 0;        ///< lines that reached dispatch
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;          ///< typed-error responses
    std::uint64_t parse_errors = 0;    ///< malformed/oversized lines
    std::uint64_t rejected_overload = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;         ///< attempts beyond the first
    std::uint64_t cache_hits = 0;
    /// Requests that asked for SHARDS-sampled (approximate) predictions.
    std::uint64_t approx_requests = 0;
    /// In-memory source-cache counters: a hit means the request touched
    /// neither the .mtx text nor the .spmvc file.
    std::uint64_t source_hits = 0;
    std::uint64_t source_loads = 0;
    std::uint64_t source_entries = 0;
    PlanCacheStats cache{};
    QuarantineStats quarantine{};
    double uptime_seconds = 0.0;
};

/// One long-running daemon instance. run() is the blocking loop; tests and
/// the bench drive handle_line() directly for synchronous semantics.
class Server {
public:
    explicit Server(ServeOptions options = {});

    /// Pumps requests from `in`, writes one response line per request to
    /// `out`, logs lifecycle to `log`. Returns kExitOk after a clean drain
    /// (EOF, shutdown request, or drain signal). Blocks until drained.
    int run(std::istream& in, std::ostream& out, std::ostream& log);

    /// Parses and executes one request synchronously on the calling
    /// thread (admission control and quarantine still apply); returns the
    /// rendered response line. Never throws.
    [[nodiscard]] std::string handle_line(const std::string& line)
        SPMV_EXCLUDES(stats_mutex_);

    /// One mutually consistent snapshot: the daemon counters are read
    /// under a single stats_mutex_ acquisition, and each subsystem
    /// (plan cache, quarantine, source cache) contributes its own
    /// single-lock snapshot, so invariants like requests == ok + failed
    /// and cache.entries == insertions - evictions hold in the result
    /// even while requests are in flight.
    [[nodiscard]] ServeStats stats() const SPMV_EXCLUDES(stats_mutex_);

    /// Serialized stats snapshot (the final report and `health` payload).
    [[nodiscard]] std::string render_stats_json() const;

private:
    struct ExecOutcome {
        std::string payload;
        bool cache_hit = false;
    };

    /// Dispatch after parse: matrix ops, health, shutdown.
    [[nodiscard]] ServeResponse dispatch(const ServeRequest& request);
    /// The full matrix-op path: quarantine, deadline, retries, cache.
    [[nodiscard]] ServeResponse execute_matrix_op(const ServeRequest& request);
    /// One deadline-guarded attempt (load + fingerprint + model + cache).
    /// Static, and handed shared_ptrs instead of `this`: an expired
    /// deadline abandons the attempt on a detached thread, which must not
    /// touch the Server object but may still finish against the cache.
    [[nodiscard]] static Result<ExecOutcome> attempt(
        const ServeRequest& request, const ServeOptions& options,
        const std::shared_ptr<PlanCache>& cache,
        const std::shared_ptr<Quarantine>& quarantine,
        const std::shared_ptr<SourceCache>& sources,
        const std::shared_ptr<std::atomic<std::uint64_t>>& fp_key_slot);
    /// Claims an admission slot; an Error (OverloadedError or an armed
    /// serve.accept fault) means the request was rejected.
    [[nodiscard]] std::optional<Error> admit();
    /// Releases the slot claimed by a successful admit().
    void finish_one();
    [[nodiscard]] std::string render_health_payload() const
        SPMV_EXCLUDES(stats_mutex_);
    void count_response(const ServeResponse& response)
        SPMV_EXCLUDES(stats_mutex_);

    ServeOptions options_;
    std::shared_ptr<PlanCache> cache_;
    std::shared_ptr<Quarantine> quarantine_;
    /// Loaded-matrix memo: repeat requests for the same source reuse the
    /// resident CsrView/fingerprint/stats instead of re-reading the file.
    std::shared_ptr<SourceCache> sources_;
    Timer uptime_;
    std::atomic<std::size_t> in_flight_{0};
    std::atomic<std::uint64_t> next_request_number_{1};

    mutable Mutex stats_mutex_;
    ServeStats counters_ SPMV_GUARDED_BY(stats_mutex_);
    // Declared last so the pool joins (and its tasks stop touching the
    // members above) before anything else is destroyed.
    ThreadPool pool_;
};

}  // namespace spmvcache
