// Set-associative cache with A64FX-style way-based sector partitioning.
//
// Sector semantics follow the A64FX microarchitecture manual: each sector
// has a *maximum way count* per set. On a fill, if the incoming sector is
// at (or above) its quota in the set, the victim is the LRU line of that
// sector; otherwise an invalid way or the LRU line of the over-quota other
// sector is used. Reconfiguring the quotas never flushes the cache — lines
// migrate only through future fills, exactly as on the hardware. A hit
// with a different sector ID re-tags the line.
//
// Replacement is exact LRU within the candidate set of ways; the A64FX's
// (undisclosed) pseudo-LRU is approximated by LRU, the same assumption the
// paper makes for its model (§2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace spmvcache {

/// How victims are chosen within the candidate ways.
enum class ReplacementPolicy : std::uint8_t {
    /// Exact least-recently-used (the assumption behind the paper's model).
    Lru,
    /// Not-recently-used (clock): a one-bit-per-line pseudo-LRU like the
    /// (undisclosed) A64FX policy; victims are lines whose reference bit
    /// is clear, with all bits reset when every candidate was referenced.
    Nru,
};

/// Static geometry plus the dynamic sector-1 way quota.
struct CacheConfig {
    std::uint64_t size_bytes = 64 * 1024;
    std::uint32_t line_bytes = 256;
    std::uint32_t ways = 4;
    /// Ways reserved for sector 1 (0 disables partitioning: all data
    /// competes for all ways regardless of sector tag).
    std::uint32_t sector1_ways = 0;
    ReplacementPolicy replacement = ReplacementPolicy::Lru;

    [[nodiscard]] std::uint64_t lines() const noexcept {
        return size_bytes / line_bytes;
    }
    [[nodiscard]] std::uint64_t sets() const noexcept {
        return lines() / ways;
    }
};

/// What happened on an access or fill.
struct CacheOutcome {
    bool hit = false;
    bool hit_prefetched_unused = false;  ///< swap: first demand touch of a
                                         ///< prefetched line
    bool evicted = false;
    std::uint64_t evicted_line = 0;
    bool evicted_dirty = false;
    bool evicted_prefetched_unused = false;  ///< premature eviction
};

/// One set-associative sector cache (an L1D or one L2 segment).
class SectorCache {
public:
    explicit SectorCache(const CacheConfig& config);

    /// Looks up `line`; on hit updates recency, dirtiness and sector tag.
    /// Does not allocate on miss — callers decide fill policy per level.
    [[nodiscard]] CacheOutcome lookup(std::uint64_t line, int sector,
                                      bool write) noexcept;

    /// Inserts `line` after a miss, choosing a victim per sector quotas.
    /// `prefetched` marks the line as filled-by-prefetch (cleared on first
    /// demand hit). Returns eviction information.
    CacheOutcome fill(std::uint64_t line, int sector, bool write,
                      bool prefetched) noexcept;

    /// True if the line is present (no recency update).
    [[nodiscard]] bool contains(std::uint64_t line) const noexcept;

    /// Marks an existing line dirty (write-back from an inner level);
    /// returns false if the line is not present.
    bool mark_dirty(std::uint64_t line) noexcept;

    /// Changes the sector-1 way quota without flushing (A64FX dynamic
    /// reconfiguration). Pre: value < ways (sector 0 keeps at least 1 way)
    /// or 0 to disable partitioning.
    void set_sector1_ways(std::uint32_t ways1);

    [[nodiscard]] const CacheConfig& config() const noexcept {
        return config_;
    }

    /// Number of valid lines currently tagged with `sector`.
    [[nodiscard]] std::uint64_t occupancy(int sector) const noexcept;

    /// Invalidates everything (used between experiments, never implicitly).
    void flush() noexcept;

private:
    struct Way {
        std::uint64_t tag = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched_unused = false;
        bool referenced = false;  ///< NRU reference bit
        std::uint8_t sector = 0;
    };

    /// NRU victim among the set's ways holding `sector` lines (or any
    /// valid line if sector < 0); resets reference bits when exhausted.
    [[nodiscard]] Way* nru_victim(Way* set, int sector) noexcept;

    [[nodiscard]] std::size_t set_of(std::uint64_t line) const noexcept {
        return static_cast<std::size_t>(line & (sets_ - 1));
    }
    [[nodiscard]] Way* ways_of(std::size_t set) noexcept {
        return &ways_[set * config_.ways];
    }
    [[nodiscard]] const Way* ways_of(std::size_t set) const noexcept {
        return &ways_[set * config_.ways];
    }

    CacheConfig config_;
    std::uint64_t sets_ = 0;
    std::vector<Way> ways_;
    std::uint64_t clock_ = 0;  ///< global recency stamp source
};

}  // namespace spmvcache
