// A64FX machine description: 48 cores in four NUMA domains (CMGs), private
// 64 KiB 4-way L1D per core, one shared 8 MiB 16-way L2 segment per domain,
// 256-byte lines, HBM2 memory (§4.1 of the paper).
#pragma once

#include <cstdint>

#include "cachesim/cache.hpp"
#include "cachesim/prefetch.hpp"

namespace spmvcache {

/// A sector-cache configuration in the paper's terms: how many ways of
/// each level are given to sector 1 (the non-reusable data). 0 = level
/// unpartitioned, as with FCC's scache_isolate_way L2=N2 [L1=N1].
struct SectorWays {
    std::uint32_t l2 = 0;
    std::uint32_t l1 = 0;

    [[nodiscard]] bool enabled() const noexcept { return l2 > 0 || l1 > 0; }
    friend bool operator==(const SectorWays&, const SectorWays&) = default;
};

/// Full simulated-machine configuration; defaults model the A64FX.
struct A64fxConfig {
    std::int64_t cores = 48;
    std::int64_t cores_per_numa = 12;

    CacheConfig l1{64 * 1024, 256, 4, 0};
    CacheConfig l2{8 * 1024 * 1024, 256, 16, 0};

    /// Per-core L1 stream prefetcher: runs a few KiB ahead.
    PrefetchConfig l1_prefetch{true, 16, 8, 4};
    /// Per-core L2 stream prefetcher: aggressive distance (48 KiB ahead
    /// per stream), the §4.3 premature-eviction lever — with 12 cores x 2
    /// matrix streams per segment, the in-flight prefetched lines exceed
    /// a 2-way sector (4096 lines) but fit from 4 ways up, reproducing
    /// the paper's parallel small-sector mispredictions.
    PrefetchConfig l2_prefetch{true, 192, 16, 4};

    [[nodiscard]] std::int64_t numa_domains() const noexcept {
        return (cores + cores_per_numa - 1) / cores_per_numa;
    }

    /// L2 capacity in lines of one segment (32768 on the A64FX).
    [[nodiscard]] std::uint64_t l2_lines() const noexcept {
        return l2.lines();
    }
    [[nodiscard]] std::uint64_t l1_lines() const noexcept {
        return l1.lines();
    }
};

/// The configuration used throughout the paper's experiments.
[[nodiscard]] A64fxConfig a64fx_default();

/// Capacity in lines of the given way count of a cache level (way share
/// of the total): e.g. 5 of 16 L2 ways = 5 * 2048 sets = 10240 lines.
[[nodiscard]] std::uint64_t ways_to_lines(const CacheConfig& cache,
                                          std::uint32_t ways);

}  // namespace spmvcache
