#include "cachesim/a64fx.hpp"

#include "util/error.hpp"

namespace spmvcache {

A64fxConfig a64fx_default() { return A64fxConfig{}; }

std::uint64_t ways_to_lines(const CacheConfig& cache, std::uint32_t ways) {
    SPMV_EXPECTS(ways <= cache.ways);
    return cache.sets() * ways;
}

}  // namespace spmvcache
