// Stream prefetcher modelling the A64FX hardware prefetcher.
//
// The A64FX detects ascending/descending sequential line streams and runs
// ahead of the demand stream by a *prefetch distance* that software can
// shrink through the "hardware prefetch assistance" registers of the
// Fujitsu HPC extension. That distance is the paper's lever in §4.3: with
// an aggressive distance and a small sector, prefetched lines are evicted
// before first use; after reducing the distance, a 2-way sector behaves
// like a 4-way one. The bench_ablation prefetch sweep reproduces exactly
// that experiment.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace spmvcache {

/// Tuning of one prefetcher instance.
struct PrefetchConfig {
    bool enabled = true;
    /// How far ahead of the newest demand line a stream prefetches, in
    /// cache lines (the "prefetch distance").
    std::uint32_t distance = 16;
    /// Concurrent streams tracked (LRU-replaced).
    std::uint32_t streams = 16;
    /// Prefetch issues per triggering access: rate-limits the ramp toward
    /// the full distance, so slow streams never run the whole distance
    /// ahead of their consumption.
    std::uint32_t max_issue_per_access = 4;
    /// An access within this many lines of a stream's head matches the
    /// stream (accesses behind the head only refresh it). Observations of
    /// one physical stream arrive from several sources (demand misses,
    /// L1 prefetch requests) at different offsets; without a window each
    /// source would spawn its own duplicate stream.
    std::uint32_t match_window = 32;
};

/// Detects +-1 line streams in a demand stream and emits prefetch targets.
class StreamPrefetcher {
public:
    explicit StreamPrefetcher(const PrefetchConfig& config);

    /// Observes one demand access and appends the lines to prefetch to
    /// `targets` (not cleared). A stream is allocated when an access is
    /// adjacent to a recently observed one (allocation filter), so
    /// isolated irregular accesses never displace live streams.
    void observe(std::uint64_t line, std::vector<std::uint64_t>& targets);

    void reset() noexcept;

    [[nodiscard]] const PrefetchConfig& config() const noexcept {
        return config_;
    }
    /// Changes the prefetch distance (hardware prefetch assistance).
    void set_distance(std::uint32_t distance) noexcept {
        config_.distance = distance;
    }

private:
    struct Stream {
        std::uint64_t last_line = 0;
        std::uint64_t frontier = 0;  ///< highest (dir=+1) line prefetched
        std::int8_t direction = 0;   ///< +1 or -1 once valid
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    void issue(Stream& s, std::vector<std::uint64_t>& targets);

    PrefetchConfig config_;
    std::vector<Stream> streams_;
    std::array<std::uint64_t, 4> recent_{};  ///< allocation-filter ring
    std::size_t recent_cursor_ = 0;
    std::uint64_t clock_ = 0;
};

}  // namespace spmvcache
