#include "cachesim/hierarchy.hpp"

#include "util/error.hpp"

namespace spmvcache {

MemoryHierarchy::MemoryHierarchy(const A64fxConfig& config)
    : config_(config) {
    SPMV_EXPECTS(config.cores >= 1);
    SPMV_EXPECTS(config.cores_per_numa >= 1);
    const auto cores = static_cast<std::size_t>(config.cores);
    const auto segments = static_cast<std::size_t>(config.numa_domains());

    l1_.reserve(cores);
    l1_prefetchers_.reserve(cores);
    l2_prefetchers_.reserve(cores);
    for (std::size_t c = 0; c < cores; ++c) {
        l1_.emplace_back(config.l1);
        l1_prefetchers_.emplace_back(config.l1_prefetch);
        l2_prefetchers_.emplace_back(config.l2_prefetch);
    }
    l2_.reserve(segments);
    for (std::size_t s = 0; s < segments; ++s) l2_.emplace_back(config.l2);

    l1_counters_.resize(cores);
    l2_counters_.resize(segments);
    core_counters_.resize(cores);
    last_.resize(cores);
    l2_skip_credits_.resize(segments, 0);
    l1_skip_credits_.resize(cores, 0);
}

void MemoryHierarchy::demand_access(std::uint32_t core, std::uint64_t line,
                                    int sector, bool write) {
    SPMV_EXPECTS(core < l1_.size());
    CoreCounters& cc = core_counters_[core];
    L1Counters& l1c = l1_counters_[core];
    ++cc.demand_accesses;
    ++l1c.accesses;

    // Fast path: repeated read of the line we just hit.
    LastAccess& last = last_[core];
    if (!write && line == last.line && sector == last.sector &&
        last.was_read_hit) {
        ++l1c.hits;
        return;
    }

    const std::int64_t segment =
        static_cast<std::int64_t>(core) / config_.cores_per_numa;
    SectorCache& l1 = l1_[core];

    const CacheOutcome l1_outcome = l1.lookup(line, sector, write);
    if (l1_outcome.hit) {
        ++l1c.hits;
    } else {
        ++l1c.refills;
        ++cc.l1_refills;
        // Demand access reaches the L2 segment.
        l2_demand(core, segment, line, sector);
        fill_l1(core, segment, line, sector, write, /*prefetched=*/false);

        // Both prefetchers train on this core's miss streams: the L1
        // prefetcher on L1 demand misses, the L2 prefetcher on the L2
        // access stream (which these misses constitute).
        l1_prefetchers_[core].observe(line, scratch_targets_);
        issue_l1_prefetches(core, segment, sector);
        l2_prefetchers_[core].observe(line, scratch_targets_);
        issue_l2_prefetches(core, segment, sector);
    }

    last.line = line;
    last.sector = sector;
    // The line is resident in this core's private L1 after any outcome
    // (hit, or miss followed by fill), so a repeated read may fast-path.
    last.was_read_hit = true;
}

void MemoryHierarchy::software_prefetch(std::uint32_t core,
                                        std::uint64_t line, int sector) {
    SPMV_EXPECTS(core < l1_.size());
    SectorCache& l1 = l1_[core];
    if (l1.contains(line)) return;
    const std::int64_t segment =
        static_cast<std::int64_t>(core) / config_.cores_per_numa;
    // Pull into L2 if absent (counted like any other prefetch fill), then
    // into the L1. No demand counters, no prefetcher training.
    l2_prefetch_fill(segment, line, sector);
    ++l1_counters_[core].prefetch_fills;
    fill_l1(core, segment, line, sector, /*write=*/false,
            /*prefetched=*/true);
}

void MemoryHierarchy::l2_demand(std::uint32_t core, std::int64_t segment,
                                std::uint64_t line, int sector) {
    L2Counters& l2c = l2_counters_[static_cast<std::size_t>(segment)];
    CoreCounters& cc = core_counters_[core];
    SectorCache& l2 = l2_[static_cast<std::size_t>(segment)];

    ++l2c.demand_accesses;
    const CacheOutcome outcome = l2.lookup(line, sector, /*write=*/false);
    if (outcome.hit) {
        ++l2c.demand_hits;
        ++cc.l2_demand_hits;
        if (outcome.hit_prefetched_unused) {
            ++l2c.swap_dm;
            ++cc.l2_swaps;
        }
        return;
    }
    // Demand miss: fetch the line from memory.
    ++l2c.demand_fills;
    ++cc.l2_demand_fills;
    const CacheOutcome fill =
        l2.fill(line, sector, /*write=*/false, /*prefetched=*/false);
    if (fill.evicted) {
        if (fill.evicted_dirty) ++l2c.writebacks;
        if (fill.evicted_prefetched_unused) {
            ++l2c.prefetch_unused_evictions;
            grant_l2_skip(segment);
        }
    }
}

void MemoryHierarchy::fill_l1(std::uint32_t core, std::int64_t segment,
                              std::uint64_t line, int sector, bool write,
                              bool prefetched) {
    L1Counters& l1c = l1_counters_[core];
    L2Counters& l2c = l2_counters_[static_cast<std::size_t>(segment)];
    const CacheOutcome fill = l1_[core].fill(line, sector, write, prefetched);
    if (!fill.evicted) return;
    // Keep the per-core fast-path cache honest: the remembered line may be
    // the one just evicted (e.g. by a prefetch fill into the same set).
    if (fill.evicted_line == last_[core].line) last_[core] = LastAccess{};
    if (fill.evicted_prefetched_unused) {
        ++l1c.prefetch_unused_evictions;
        grant_l1_skip(core);
    }
    if (fill.evicted_dirty) {
        ++l1c.writebacks;
        // Write back into the L2 copy; if the L2 already evicted the line
        // (non-inclusive hierarchy) the data goes straight to memory.
        if (!l2_[static_cast<std::size_t>(segment)].mark_dirty(
                fill.evicted_line))
            ++l2c.writebacks;
    }
}

void MemoryHierarchy::issue_l1_prefetches(std::uint32_t core,
                                          std::int64_t segment, int sector) {
    if (scratch_targets_.empty()) return;
    L1Counters& l1c = l1_counters_[core];
    SectorCache& l1 = l1_[core];
    // L1 prefetch requests reach the L2 like demand requests do, so they
    // also train the L2 prefetcher (otherwise an L1 prefetcher that fully
    // covers a stream would starve the L2 one).
    l2_scratch_.clear();
    for (const std::uint64_t target : scratch_targets_) {
        if (l1.contains(target)) continue;
        if (l1_skip_credits_[core] > 0) {
            // Feedback throttling: a recent premature eviction cancels
            // this issue.
            --l1_skip_credits_[core];
            continue;
        }
        l2_prefetchers_[core].observe(target, l2_scratch_);
        // An L1 prefetch that misses the L2 pulls the line into both
        // levels (counted as an L2 prefetch fill from memory).
        l2_prefetch_fill(segment, target, sector);
        ++l1c.prefetch_fills;
        fill_l1(core, segment, target, sector, /*write=*/false,
                /*prefetched=*/true);
    }
    scratch_targets_.clear();
    for (const std::uint64_t target : l2_scratch_)
        l2_prefetch_fill(segment, target, sector);
    l2_scratch_.clear();
}

void MemoryHierarchy::issue_l2_prefetches(std::uint32_t core,
                                          std::int64_t segment, int sector) {
    if (scratch_targets_.empty()) return;
    (void)core;
    for (const std::uint64_t target : scratch_targets_)
        l2_prefetch_fill(segment, target, sector);
    scratch_targets_.clear();
}

void MemoryHierarchy::l2_prefetch_fill(std::int64_t segment,
                                       std::uint64_t target, int sector) {
    SectorCache& l2 = l2_[static_cast<std::size_t>(segment)];
    if (l2.contains(target)) return;
    std::uint64_t& credits =
        l2_skip_credits_[static_cast<std::size_t>(segment)];
    if (credits > 0) {
        // Feedback throttling (§4.3 mitigation on real hardware): skip
        // one issue per recent premature eviction so the in-flight window
        // converges to what the sector can hold.
        --credits;
        return;
    }
    L2Counters& l2c = l2_counters_[static_cast<std::size_t>(segment)];
    ++l2c.prefetch_fills;
    const CacheOutcome fill =
        l2.fill(target, sector, /*write=*/false, /*prefetched=*/true);
    if (fill.evicted) {
        if (fill.evicted_dirty) ++l2c.writebacks;
        if (fill.evicted_prefetched_unused) {
            ++l2c.prefetch_unused_evictions;
            grant_l2_skip(segment);
        }
    }
}

void MemoryHierarchy::set_sector_ways(SectorWays ways) {
    for (auto& cache : l1_) cache.set_sector1_ways(ways.l1);
    for (auto& cache : l2_) cache.set_sector1_ways(ways.l2);
    config_.l1.sector1_ways = ways.l1;
    config_.l2.sector1_ways = ways.l2;
}

void MemoryHierarchy::set_prefetch_distances(std::uint32_t l1_distance,
                                             std::uint32_t l2_distance) {
    for (auto& pf : l1_prefetchers_) pf.set_distance(l1_distance);
    for (auto& pf : l2_prefetchers_) pf.set_distance(l2_distance);
    config_.l1_prefetch.distance = l1_distance;
    config_.l2_prefetch.distance = l2_distance;
}

void MemoryHierarchy::reset_counters() {
    std::fill(l1_counters_.begin(), l1_counters_.end(), L1Counters{});
    std::fill(l2_counters_.begin(), l2_counters_.end(), L2Counters{});
    std::fill(core_counters_.begin(), core_counters_.end(), CoreCounters{});
}

void MemoryHierarchy::reset_all() {
    reset_counters();
    for (auto& cache : l1_) cache.flush();
    for (auto& cache : l2_) cache.flush();
    for (auto& pf : l1_prefetchers_) pf.reset();
    for (auto& pf : l2_prefetchers_) pf.reset();
    std::fill(last_.begin(), last_.end(), LastAccess{});
    std::fill(l2_skip_credits_.begin(), l2_skip_credits_.end(), 0);
    std::fill(l1_skip_credits_.begin(), l1_skip_credits_.end(), 0);
}

L1Counters MemoryHierarchy::l1_total() const {
    L1Counters total;
    for (const auto& c : l1_counters_) total += c;
    return total;
}

L2Counters MemoryHierarchy::l2_total() const {
    L2Counters total;
    for (const auto& c : l2_counters_) total += c;
    return total;
}

const L2Counters& MemoryHierarchy::l2_segment(std::int64_t segment) const {
    SPMV_EXPECTS(segment >= 0 && segment < segments());
    return l2_counters_[static_cast<std::size_t>(segment)];
}

const CoreCounters& MemoryHierarchy::core_counters(std::uint32_t core) const {
    SPMV_EXPECTS(core < core_counters_.size());
    return core_counters_[core];
}

const SectorCache& MemoryHierarchy::l1_cache(std::uint32_t core) const {
    SPMV_EXPECTS(core < l1_.size());
    return l1_[core];
}

const SectorCache& MemoryHierarchy::l2_cache(std::int64_t segment) const {
    SPMV_EXPECTS(segment >= 0 && segment < segments());
    return l2_[static_cast<std::size_t>(segment)];
}

}  // namespace spmvcache
