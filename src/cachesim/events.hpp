// PMU-style event counters mirroring the A64FX events the paper measures
// (§4.3): L1D_CACHE_REFILL, L2D_CACHE_REFILL, L2D_CACHE_REFILL_DM,
// L2D_SWAP_DM, L2D_CACHE_MIBMCH_PRF and L2D_CACHE_WB, with the same
// correction arithmetic ("true" L2 misses = REFILL - SWAP_DM - MIBMCH_PRF).
#pragma once

#include <cstdint>

namespace spmvcache {

/// Counters of one L1D cache (per core).
struct L1Counters {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t refills = 0;            ///< L1D_CACHE_REFILL (demand fills)
    std::uint64_t prefetch_fills = 0;     ///< fills issued by the L1 prefetcher
    std::uint64_t writebacks = 0;         ///< dirty evictions
    std::uint64_t prefetch_unused_evictions = 0;  ///< premature evictions

    L1Counters& operator+=(const L1Counters& o) noexcept {
        accesses += o.accesses;
        hits += o.hits;
        refills += o.refills;
        prefetch_fills += o.prefetch_fills;
        writebacks += o.writebacks;
        prefetch_unused_evictions += o.prefetch_unused_evictions;
        return *this;
    }
};

/// Counters of one shared L2 segment.
struct L2Counters {
    std::uint64_t demand_accesses = 0;
    std::uint64_t demand_hits = 0;
    std::uint64_t demand_fills = 0;    ///< L2D_CACHE_REFILL_DM: demand
                                       ///< misses fetched from memory
    std::uint64_t prefetch_fills = 0;  ///< L2D_CACHE_MIBMCH_PRF
    std::uint64_t swap_dm = 0;         ///< L2D_SWAP_DM: demand access that
                                       ///< found a prefetched-unused line
    std::uint64_t writebacks = 0;      ///< L2D_CACHE_WB
    std::uint64_t prefetch_unused_evictions = 0;

    /// Total lines brought into the L2 from memory — the paper's corrected
    /// "L2 cache misses" (REFILL - SWAP_DM - MIBMCH_PRF).
    [[nodiscard]] std::uint64_t fills() const noexcept {
        return demand_fills + prefetch_fills;
    }

    /// The raw L2D_CACHE_REFILL event as the PMU would report it (fills
    /// plus the swap and prefetch-merge artifacts the errata describes).
    [[nodiscard]] std::uint64_t refill_raw() const noexcept {
        return fills() + swap_dm + prefetch_fills;
    }

    /// Demand misses ("L2D_CACHE_REFILL_DM"), the Fig. 5 quantity.
    [[nodiscard]] std::uint64_t demand_misses() const noexcept {
        return demand_fills;
    }

    /// Memory traffic in bytes per the paper's §4.4 bandwidth formula:
    /// (L2D_CACHE_REFILL + L2D_CACHE_WB - L2D_SWAP_DM -
    ///  L2D_CACHE_MIBMCH_PRF) * line_bytes.
    [[nodiscard]] std::uint64_t memory_bytes(
        std::uint64_t line_bytes) const noexcept {
        return (refill_raw() + writebacks - swap_dm - prefetch_fills) *
               line_bytes;
    }

    L2Counters& operator+=(const L2Counters& o) noexcept {
        demand_accesses += o.demand_accesses;
        demand_hits += o.demand_hits;
        demand_fills += o.demand_fills;
        prefetch_fills += o.prefetch_fills;
        swap_dm += o.swap_dm;
        writebacks += o.writebacks;
        prefetch_unused_evictions += o.prefetch_unused_evictions;
        return *this;
    }
};

/// Per-core attribution used by the timing model: how many of the core's
/// demand accesses hit/missed at each level.
struct CoreCounters {
    std::uint64_t demand_accesses = 0;
    std::uint64_t l1_refills = 0;
    std::uint64_t l2_demand_hits = 0;
    std::uint64_t l2_demand_fills = 0;  ///< latency-critical memory fetches
    std::uint64_t l2_swaps = 0;

    CoreCounters& operator+=(const CoreCounters& o) noexcept {
        demand_accesses += o.demand_accesses;
        l1_refills += o.l1_refills;
        l2_demand_hits += o.l2_demand_hits;
        l2_demand_fills += o.l2_demand_fills;
        l2_swaps += o.l2_swaps;
        return *this;
    }
};

}  // namespace spmvcache
