#include "cachesim/cache.hpp"

namespace spmvcache {

SectorCache::SectorCache(const CacheConfig& config) : config_(config) {
    SPMV_EXPECTS(config.line_bytes >= 8);
    SPMV_EXPECTS(config.ways >= 1);
    SPMV_EXPECTS(config.size_bytes % (config.line_bytes * config.ways) == 0);
    sets_ = config.sets();
    SPMV_EXPECTS(sets_ >= 1 && (sets_ & (sets_ - 1)) == 0);
    SPMV_EXPECTS(config.sector1_ways < config.ways);
    ways_.resize(static_cast<std::size_t>(sets_) * config.ways);
}

CacheOutcome SectorCache::lookup(std::uint64_t line, int sector,
                                 bool write) noexcept {
    Way* set = ways_of(set_of(line));
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        Way& way = set[w];
        if (way.valid && way.tag == line) {
            CacheOutcome outcome;
            outcome.hit = true;
            outcome.hit_prefetched_unused = way.prefetched_unused;
            way.prefetched_unused = false;
            way.stamp = ++clock_;
            way.referenced = true;
            way.dirty = way.dirty || write;
            way.sector = static_cast<std::uint8_t>(sector);
            return outcome;
        }
    }
    return CacheOutcome{};
}

CacheOutcome SectorCache::fill(std::uint64_t line, int sector, bool write,
                               bool prefetched) noexcept {
    Way* set = ways_of(set_of(line));
    CacheOutcome outcome;

    const bool partitioned = config_.sector1_ways > 0;
    const std::uint32_t quota[2] = {
        partitioned ? config_.ways - config_.sector1_ways : config_.ways,
        partitioned ? config_.sector1_ways : config_.ways};

    // Census of the set: invalid way, per-sector counts, per-sector and
    // global LRU.
    Way* invalid = nullptr;
    std::uint32_t count[2] = {0, 0};
    Way* lru_of_sector[2] = {nullptr, nullptr};
    Way* lru_global = nullptr;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        Way& way = set[w];
        if (!way.valid) {
            if (invalid == nullptr) invalid = &way;
            continue;
        }
        const int s = way.sector;
        ++count[s];
        if (lru_of_sector[s] == nullptr ||
            way.stamp < lru_of_sector[s]->stamp)
            lru_of_sector[s] = &way;
        if (lru_global == nullptr || way.stamp < lru_global->stamp)
            lru_global = &way;
    }

    const bool nru = config_.replacement == ReplacementPolicy::Nru;
    Way* victim = nullptr;
    if (!partitioned) {
        // Sector tags are ignored entirely when partitioning is off.
        victim = invalid != nullptr
                     ? invalid
                     : (nru ? nru_victim(set, -1) : lru_global);
    } else if (count[sector] >= quota[sector] &&
               lru_of_sector[sector] != nullptr) {
        // At quota: replace within the own sector.
        victim = nru ? nru_victim(set, sector) : lru_of_sector[sector];
    } else if (invalid != nullptr) {
        victim = invalid;
    } else {
        // Set full but own sector under quota: the other sector must be
        // over its quota; take its victim.
        const int other = lru_of_sector[1 - sector] != nullptr ? 1 - sector
                                                               : sector;
        victim = nru ? nru_victim(set, other) : lru_of_sector[other];
    }

    if (victim->valid) {
        outcome.evicted = true;
        outcome.evicted_line = victim->tag;
        outcome.evicted_dirty = victim->dirty;
        outcome.evicted_prefetched_unused = victim->prefetched_unused;
    }
    victim->tag = line;
    victim->valid = true;
    victim->dirty = write;
    victim->prefetched_unused = prefetched;
    victim->referenced = true;
    victim->sector = static_cast<std::uint8_t>(sector);
    victim->stamp = ++clock_;
    return outcome;
}

SectorCache::Way* SectorCache::nru_victim(Way* set, int sector) noexcept {
    auto candidate = [&](const Way& way) {
        return way.valid && (sector < 0 || way.sector == sector);
    };
    // The most recently used candidate is never the victim (as in
    // tree-PLRU, where the last access flips the tree away from itself).
    Way* mru = nullptr;
    std::uint32_t candidates = 0;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (!candidate(set[w])) continue;
        ++candidates;
        if (mru == nullptr || set[w].stamp > mru->stamp) mru = &set[w];
    }
    if (candidates <= 1) return mru != nullptr ? mru : &set[0];

    for (int round = 0; round < 2; ++round) {
        for (std::uint32_t w = 0; w < config_.ways; ++w) {
            if (candidate(set[w]) && &set[w] != mru && !set[w].referenced)
                return &set[w];
        }
        // All eligible candidates were recently referenced: clear their
        // bits and scan again (the clock-hand sweep).
        for (std::uint32_t w = 0; w < config_.ways; ++w)
            if (candidate(set[w]) && &set[w] != mru)
                set[w].referenced = false;
    }
    return mru;  // unreachable with >= 2 candidates
}

bool SectorCache::contains(std::uint64_t line) const noexcept {
    const Way* set = ways_of(set_of(line));
    for (std::uint32_t w = 0; w < config_.ways; ++w)
        if (set[w].valid && set[w].tag == line) return true;
    return false;
}

bool SectorCache::mark_dirty(std::uint64_t line) noexcept {
    Way* set = ways_of(set_of(line));
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].tag == line) {
            set[w].dirty = true;
            return true;
        }
    }
    return false;
}

void SectorCache::set_sector1_ways(std::uint32_t ways1) {
    SPMV_EXPECTS(ways1 < config_.ways);
    config_.sector1_ways = ways1;
}

std::uint64_t SectorCache::occupancy(int sector) const noexcept {
    std::uint64_t n = 0;
    for (const Way& way : ways_)
        if (way.valid && way.sector == sector) ++n;
    return n;
}

void SectorCache::flush() noexcept {
    for (Way& way : ways_) way = Way{};
    clock_ = 0;
}

}  // namespace spmvcache
