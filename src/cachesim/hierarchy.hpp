// The simulated A64FX memory hierarchy: per-core L1D sector caches in
// front of four shared L2 sector-cache segments, with per-core L1 and L2
// stream prefetchers, consuming the MemRef traces the trace module
// produces. This is the repository's stand-in for "running on hardware":
// its counters are what the benches report as *measured*, and the reuse-
// distance model never looks inside it.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/a64fx.hpp"
#include "cachesim/cache.hpp"
#include "cachesim/events.hpp"
#include "cachesim/prefetch.hpp"
#include "trace/memref.hpp"

namespace spmvcache {

/// Execution-driven multi-core cache simulator.
class MemoryHierarchy {
public:
    explicit MemoryHierarchy(const A64fxConfig& config);

    /// Processes one demand access by `core` (0-based) to cache line
    /// `line`, tagged with `sector`, optionally a store.
    void demand_access(std::uint32_t core, std::uint64_t line, int sector,
                       bool write);

    /// Software-prefetch hint (prfm): pulls `line` into both levels,
    /// marked prefetched, without demand-side bookkeeping or prefetcher
    /// training. No-op if already in this core's L1.
    void software_prefetch(std::uint32_t core, std::uint64_t line,
                           int sector);

    /// Convenience: routes a trace reference; the sector is derived from
    /// the reference's data object under `policy`, the core from the
    /// logical thread. Pre: ref.thread < cores.
    void access(const MemRef& ref, SectorPolicy policy) {
        const int sector = sector_of(ref.object, policy);
        if (ref.is_prefetch)
            software_prefetch(ref.thread, ref.line, sector);
        else
            demand_access(ref.thread, ref.line, sector, ref.is_write);
    }

    /// Reconfigures sector way quotas at both levels without flushing.
    void set_sector_ways(SectorWays ways);

    /// Changes the prefetch distances (hardware prefetch assistance).
    void set_prefetch_distances(std::uint32_t l1_distance,
                                std::uint32_t l2_distance);

    /// Zeroes every counter; cache contents are preserved (used between
    /// the warm-up and the measured iteration).
    void reset_counters();

    /// Invalidates all caches and counters.
    void reset_all();

    [[nodiscard]] const A64fxConfig& config() const noexcept {
        return config_;
    }
    [[nodiscard]] std::int64_t segments() const noexcept {
        return static_cast<std::int64_t>(l2_.size());
    }

    /// Aggregate L1 counters over all cores.
    [[nodiscard]] L1Counters l1_total() const;
    /// Aggregate L2 counters over all segments.
    [[nodiscard]] L2Counters l2_total() const;
    [[nodiscard]] const L2Counters& l2_segment(std::int64_t segment) const;
    [[nodiscard]] const CoreCounters& core_counters(std::uint32_t core) const;

    /// Direct access for tests.
    [[nodiscard]] const SectorCache& l1_cache(std::uint32_t core) const;
    [[nodiscard]] const SectorCache& l2_cache(std::int64_t segment) const;

private:
    void l2_demand(std::uint32_t core, std::int64_t segment,
                   std::uint64_t line, int sector);
    void fill_l1(std::uint32_t core, std::int64_t segment, std::uint64_t line,
                 int sector, bool write, bool prefetched);
    void issue_l1_prefetches(std::uint32_t core, std::int64_t segment,
                             int sector);
    void issue_l2_prefetches(std::uint32_t core, std::int64_t segment,
                             int sector);
    /// One throttle-aware L2 prefetch fill (no-op if cached or skipped).
    void l2_prefetch_fill(std::int64_t segment, std::uint64_t target,
                          int sector);

    static constexpr std::uint64_t kMaxSkipCredits = 1024;
    void grant_l2_skip(std::int64_t segment) noexcept {
        auto& c = l2_skip_credits_[static_cast<std::size_t>(segment)];
        if (c < kMaxSkipCredits) ++c;
    }
    void grant_l1_skip(std::uint32_t core) noexcept {
        auto& c = l1_skip_credits_[core];
        if (c < kMaxSkipCredits) ++c;
    }

    A64fxConfig config_;
    std::vector<SectorCache> l1_;
    std::vector<SectorCache> l2_;
    std::vector<StreamPrefetcher> l1_prefetchers_;  // per core
    std::vector<StreamPrefetcher> l2_prefetchers_;  // per core
    std::vector<L1Counters> l1_counters_;           // per core
    std::vector<L2Counters> l2_counters_;           // per segment
    std::vector<CoreCounters> core_counters_;       // per core

    // Fast path: most trace references repeat the previous line (several
    // array elements share a 256 B line); remember the last hit per core.
    struct LastAccess {
        std::uint64_t line = ~std::uint64_t{0};
        int sector = -1;
        bool was_read_hit = false;
    };
    std::vector<LastAccess> last_;

    std::vector<std::uint64_t> scratch_targets_;
    std::vector<std::uint64_t> l2_scratch_;

    // Feedback-directed prefetch throttling: every premature eviction of
    // a prefetched-unused line grants one "skip" credit that cancels a
    // future prefetch issue at the same level, so a prefetcher whose
    // window does not fit (e.g. a small sector shared by 12 cores, §4.3)
    // converges to the sector's capacity instead of thrashing it.
    std::vector<std::uint64_t> l2_skip_credits_;  // per segment
    std::vector<std::uint64_t> l1_skip_credits_;  // per core
};

}  // namespace spmvcache
