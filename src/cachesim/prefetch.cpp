#include "cachesim/prefetch.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmvcache {

StreamPrefetcher::StreamPrefetcher(const PrefetchConfig& config)
    : config_(config) {
    SPMV_EXPECTS(config.streams >= 1);
    streams_.resize(config.streams);
    recent_.fill(~std::uint64_t{0});
}

void StreamPrefetcher::observe(std::uint64_t line,
                               std::vector<std::uint64_t>& targets) {
    if (!config_.enabled || config_.distance == 0) return;
    ++clock_;

    // Find a stream whose head is within the match window of this access
    // (ahead of the head = the stream advanced; behind = a lagging
    // observation of the same stream, which must not spawn a duplicate).
    const std::uint64_t window = config_.match_window;
    Stream* match = nullptr;
    Stream* lru = &streams_[0];
    for (Stream& s : streams_) {
        if (!s.valid) {
            lru = &s;
            continue;
        }
        if (s.stamp < lru->stamp) lru = &s;
        const std::uint64_t head = s.last_line;
        if (line + window >= head && line <= head + window) {
            match = &s;
            break;
        }
    }

    if (match == nullptr) {
        // Allocation filter: a stream is allocated only when the miss is
        // adjacent to a recently seen miss, so isolated (e.g. random
        // x-vector) misses cannot thrash the stream table. The new stream
        // stays quiet until its next advance confirms the direction —
        // re-misses of recently consumed lines otherwise spawn spurious
        // (typically descending) streams that refetch dead data.
        std::int8_t direction = 0;
        for (const std::uint64_t recent : recent_) {
            if (recent == ~std::uint64_t{0}) continue;
            if (line == recent + 1) direction = 1;
            if (line + 1 == recent) direction = -1;
        }
        recent_[recent_cursor_] = line;
        recent_cursor_ = (recent_cursor_ + 1) % recent_.size();
        if (direction == 0) return;

        *lru = Stream{line, line, direction, true, clock_};
        return;
    }

    Stream& s = *match;
    s.stamp = clock_;
    // Only accesses ahead of the head advance the stream; lagging
    // observations just keep it alive.
    const bool advances =
        s.direction > 0 ? line > s.last_line : line < s.last_line;
    if (!advances) return;
    s.last_line = line;
    issue(s, targets);
}

void StreamPrefetcher::issue(Stream& s,
                             std::vector<std::uint64_t>& targets) {
    // Pull the frontier toward `distance` lines ahead of the stream head,
    // at most max_issue_per_access lines per triggering access (the ramp).
    std::uint32_t issued = 0;
    if (s.direction > 0) {
        if (s.frontier < s.last_line) s.frontier = s.last_line;
        const std::uint64_t goal = s.last_line + config_.distance;
        while (s.frontier < goal && issued < config_.max_issue_per_access) {
            targets.push_back(++s.frontier);
            ++issued;
        }
    } else {
        if (s.frontier > s.last_line) s.frontier = s.last_line;
        const std::uint64_t goal = s.last_line > config_.distance
                                       ? s.last_line - config_.distance
                                       : 0;
        while (s.frontier > goal && issued < config_.max_issue_per_access) {
            targets.push_back(--s.frontier);
            ++issued;
        }
    }
}

void StreamPrefetcher::reset() noexcept {
    std::fill(streams_.begin(), streams_.end(), Stream{});
    recent_.fill(~std::uint64_t{0});
    recent_cursor_ = 0;
    clock_ = 0;
}

}  // namespace spmvcache
