// Method (A): full-trace reuse-distance model (§3.2.1).
//
// The SpMV memory trace is generated from the sparsity pattern (never from
// instrumentation), per-thread streams are interleaved round-robin within
// each shared L2 segment, and a stack-processing engine computes the reuse
// distance of every reference. Two passes are made, exactly as the paper
// describes: one with all references counted in a single partition (sector
// cache off) and one with references split between partitions by the
// sector policy (Eq. 2). A warm-up iteration populates the stack so the
// counted iteration has no cold misses.
//
// One pass prices *every* requested way split at once: the reuse-distance
// histogram is evaluated at each partition capacity (the paper's stated
// advantage of reuse distance over per-size cache simulation).
#pragma once

#include "model/options.hpp"
#include "sparse/any_csr.hpp"
#include "sparse/csr_view.hpp"

namespace spmvcache {

/// Which stack-processing engine method (A) uses.
enum class EngineKind {
    Olken,  ///< exact, O(log n) per reference
    Kim,    ///< Kim et al. grouped stack: approximate, locality-independent
};

/// Runs method (A). The result contains one entry per requested L2 way
/// option plus the unpartitioned case. Accepts either physical index
/// width (AnyCsrView converts implicitly from both concrete views); the
/// traffic accounting follows the storage width unless ModelOptions pins
/// it (accounting_*_bytes).
[[nodiscard]] ModelResult run_method_a(const AnyCsrView& m,
                                       const ModelOptions& options,
                                       EngineKind engine = EngineKind::Olken);

}  // namespace spmvcache
