#include "model/method_a.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "model/shard.hpp"
#include "reuse/histogram.hpp"
#include "reuse/kim.hpp"
#include "reuse/olken.hpp"
#include "trace/spmv_trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace spmvcache {

[[nodiscard]] Result<ConfigPrediction> ModelResult::find(std::uint32_t l2_sector_ways) const {
    for (const auto& c : configs)
        if (c.l2_sector_ways == l2_sector_ways) return c;
    return Error(ErrorCode::ValidationError,
                 "no prediction for " + std::to_string(l2_sector_ways) +
                     " L2 sector ways in this run");
}

const ConfigPrediction& ModelResult::at(std::uint32_t l2_sector_ways) const {
    for (const auto& c : configs)
        if (c.l2_sector_ways == l2_sector_ways) return c;
    throw_status(Error(ErrorCode::ValidationError,
                       "no prediction for " +
                           std::to_string(l2_sector_ways) +
                           " L2 sector ways in this run"));
}

namespace {

std::unique_ptr<ReuseEngine> make_engine(EngineKind kind,
                                         std::size_t expected_lines,
                                         std::uint64_t kim_group_capacity) {
    if (kind == EngineKind::Kim)
        return std::make_unique<KimEngine>(kim_group_capacity);
    return std::make_unique<OlkenEngine>(expected_lines);
}

/// Everything one shard accumulates; queried after the parallel phase.
/// Summing per-shard counters yields the same integer totals the single
/// global counters accumulated before sharding, so predictions are
/// bit-identical for any job count.
struct ShardCounters {
    ShardCounters(const std::vector<std::uint64_t>& caps0,
                  const std::vector<std::uint64_t>& caps1,
                  std::uint64_t cap_full, std::uint64_t l1_cap)
        : cnt0(caps0),
          cnt1(caps1),
          cnt_x(caps0),
          cntU({cap_full}),
          cnt_xU({cap_full}),
          cntL1({l1_cap}),
          cnt_xL1({l1_cap}) {}

    CapacityMissCounter cnt0, cnt1, cnt_x;  // partitioned pass (Eq. 2)
    CapacityMissCounter cntU, cnt_xU;       // unpartitioned pass
    CapacityMissCounter cntL1, cnt_xL1;     // per-core L1 model
    std::uint64_t references = 0;
    double seconds = 0.0;
};

}  // namespace

ModelResult run_method_a(const CsrMatrix& m, const ModelOptions& options,
                         EngineKind engine_kind) {
    SPMV_EXPECTS(options.threads >= 1);
    SPMV_EXPECTS(options.threads <= options.machine.cores);
    SPMV_EXPECTS(options.jobs >= 0);
    const Timer timer;

    const auto& machine = options.machine;
    const SpmvLayout layout(m, machine.l2.line_bytes);
    const std::int64_t segments =
        trace_segment_count(options.threads, machine.cores_per_numa);
    const std::uint64_t l2_sets = machine.l2.sets();
    const std::uint64_t l2_total_ways = machine.l2.ways;

    // Partition capacities (in lines) priced by the partitioned pass.
    std::vector<std::uint64_t> caps0;  // sector 0: (ways - w) * sets
    std::vector<std::uint64_t> caps1;  // sector 1: w * sets
    for (const auto w : options.l2_way_options) {
        SPMV_EXPECTS(w >= 1 && w < l2_total_ways);
        caps0.push_back((l2_total_ways - w) * l2_sets);
        caps1.push_back(static_cast<std::uint64_t>(w) * l2_sets);
    }
    const std::uint64_t cap_full = l2_total_ways * l2_sets;
    const std::uint64_t l1_cap = machine.l1.lines();

    const TraceConfig trace_cfg{options.threads, options.partition,
                                options.quantum};
    const std::size_t lines_hint =
        static_cast<std::size_t>(layout.total_lines() /
                                 static_cast<std::uint64_t>(segments)) +
        64;
    const std::int64_t jobs = detail::resolve_model_jobs(options.jobs);

    std::vector<ShardCounters> shard_state;
    shard_state.reserve(static_cast<std::size_t>(segments));
    for (std::int64_t s = 0; s < segments; ++s)
        shard_state.emplace_back(caps0, caps1, cap_full, l1_cap);

    // One shard per L2 segment. The fused body derives the segment's slice
    // of the trace twice (warm-up + counted) and feeds the partitioned
    // engines (Eq. 2), the unpartitioned engine, and the segment's per-core
    // L1 engines from the same derivation — previously four derivations of
    // the *full* trace on one thread.
    detail::for_each_shard(segments, jobs, [&](std::int64_t s) {
        const Timer shard_timer;
        auto& st = shard_state[static_cast<std::size_t>(s)];
        const std::int64_t t_begin = s * machine.cores_per_numa;
        const std::int64_t t_count =
            std::min(options.threads, t_begin + machine.cores_per_numa) -
            t_begin;

        auto eng0 =
            make_engine(engine_kind, lines_hint, options.kim_group_capacity);
        auto eng1 =
            make_engine(engine_kind, lines_hint, options.kim_group_capacity);
        auto engU =
            make_engine(engine_kind, lines_hint, options.kim_group_capacity);
        std::vector<std::unique_ptr<ReuseEngine>> engL1;
        if (options.predict_l1)
            for (std::int64_t c = 0; c < t_count; ++c)
                engL1.push_back(make_engine(engine_kind, 4096,
                                            options.kim_group_capacity));

        bool counting = false;
        auto sink = [&](const MemRef& ref) {
            if (ref.is_prefetch) return;  // the model sees demand accesses
            const int sector = sector_of(ref.object, options.policy);
            const std::uint64_t dp =
                (sector == 1 ? eng1 : eng0)->access(ref.line);
            const std::uint64_t du = engU->access(ref.line);
            std::uint64_t dl1 = 0;
            if (options.predict_l1)
                dl1 = engL1[static_cast<std::size_t>(
                                static_cast<std::int64_t>(ref.thread) -
                                t_begin)]
                          ->access(ref.line);
            if (!counting) return;
            ++st.references;
            if (sector == 1) {
                st.cnt1.record(dp);
            } else {
                st.cnt0.record(dp);
                if (ref.object == DataObject::X) st.cnt_x.record(dp);
            }
            st.cntU.record(du);
            if (ref.object == DataObject::X) st.cnt_xU.record(du);
            if (options.predict_l1) {
                st.cntL1.record(dl1);
                if (ref.object == DataObject::X) st.cnt_xL1.record(dl1);
            }
        };
        generate_spmv_trace_segment(m, layout, trace_cfg,
                                    machine.cores_per_numa, s,
                                    sink);  // warm-up
        counting = true;
        generate_spmv_trace_segment(m, layout, trace_cfg,
                                    machine.cores_per_numa, s,
                                    sink);  // measured
        st.seconds = shard_timer.seconds();
    });

    // ---- Assemble ---------------------------------------------------------
    ModelResult result;
    {
        ConfigPrediction off;
        off.l2_sector_ways = 0;
        // Cold misses count as misses: a line never seen in the warm-up
        // iteration cannot be resident, whatever the capacity.
        std::uint64_t misses = 0, x_misses = 0;
        for (const auto& st : shard_state) {
            misses += st.cntU.total_misses(cap_full);
            x_misses += st.cnt_xU.total_misses(cap_full);
        }
        off.l2_misses = static_cast<double>(misses);
        off.l2_x_misses = static_cast<double>(x_misses);
        result.configs.push_back(off);
    }
    for (std::size_t i = 0; i < options.l2_way_options.size(); ++i) {
        ConfigPrediction p;
        p.l2_sector_ways = options.l2_way_options[i];
        std::uint64_t misses = 0, x_misses = 0;
        for (const auto& st : shard_state) {
            misses += st.cnt0.total_misses(caps0[i]) +
                      st.cnt1.total_misses(caps1[i]);
            x_misses += st.cnt_x.total_misses(caps0[i]);
        }
        p.l2_misses = static_cast<double>(misses);
        p.l2_x_misses = static_cast<double>(x_misses);
        result.configs.push_back(p);
    }
    if (options.predict_l1) {
        std::uint64_t misses = 0, x_misses = 0;
        for (const auto& st : shard_state) {
            misses += st.cntL1.total_misses(l1_cap);
            x_misses += st.cnt_xL1.total_misses(l1_cap);
        }
        result.l1_misses = static_cast<double>(misses);
        result.l1_x_misses = static_cast<double>(x_misses);
    }
    const double total_unpart = result.configs.front().l2_misses;
    result.x_traffic_fraction =
        total_unpart > 0.0 ? result.configs.front().l2_x_misses / total_unpart
                           : 0.0;
    for (std::int64_t s = 0; s < segments; ++s) {
        const auto& st = shard_state[static_cast<std::size_t>(s)];
        const std::int64_t t_begin = s * machine.cores_per_numa;
        result.shards.push_back(ShardStats{
            s,
            std::min(options.threads, t_begin + machine.cores_per_numa) -
                t_begin,
            st.references, st.seconds});
    }
    result.jobs = std::max<std::int64_t>(1, std::min(jobs, segments));
    result.seconds = timer.seconds();
    return result;
}

}  // namespace spmvcache
