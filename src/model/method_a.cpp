#include "model/method_a.hpp"

#include <memory>

#include "reuse/histogram.hpp"
#include "reuse/kim.hpp"
#include "reuse/olken.hpp"
#include "trace/spmv_trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace spmvcache {

const ConfigPrediction& ModelResult::at(std::uint32_t l2_sector_ways) const {
    for (const auto& c : configs)
        if (c.l2_sector_ways == l2_sector_ways) return c;
    throw ContractViolation("no prediction for requested sector way count");
}

namespace {

std::unique_ptr<ReuseEngine> make_engine(EngineKind kind,
                                         std::size_t expected_lines,
                                         std::uint64_t kim_group_capacity) {
    if (kind == EngineKind::Kim)
        return std::make_unique<KimEngine>(kim_group_capacity);
    return std::make_unique<OlkenEngine>(expected_lines);
}

}  // namespace

ModelResult run_method_a(const CsrMatrix& m, const ModelOptions& options,
                         EngineKind engine_kind) {
    SPMV_EXPECTS(options.threads >= 1);
    SPMV_EXPECTS(options.threads <= options.machine.cores);
    const Timer timer;

    const auto& machine = options.machine;
    const SpmvLayout layout(m, machine.l2.line_bytes);
    const std::int64_t segments =
        (options.threads + machine.cores_per_numa - 1) /
        machine.cores_per_numa;
    const std::uint64_t l2_sets = machine.l2.sets();
    const std::uint64_t l2_total_ways = machine.l2.ways;

    // Partition capacities (in lines) priced by the partitioned pass.
    std::vector<std::uint64_t> caps0;  // sector 0: (ways - w) * sets
    std::vector<std::uint64_t> caps1;  // sector 1: w * sets
    for (const auto w : options.l2_way_options) {
        SPMV_EXPECTS(w >= 1 && w < l2_total_ways);
        caps0.push_back((l2_total_ways - w) * l2_sets);
        caps1.push_back(static_cast<std::uint64_t>(w) * l2_sets);
    }
    const std::uint64_t cap_full = l2_total_ways * l2_sets;

    const TraceConfig trace_cfg{options.threads, options.partition,
                                options.quantum};
    const std::size_t lines_hint =
        static_cast<std::size_t>(layout.total_lines() /
                                 static_cast<std::uint64_t>(segments)) +
        64;

    auto segment_of = [&](std::uint32_t thread) {
        return static_cast<std::size_t>(thread /
                                        machine.cores_per_numa);
    };

    // ---- Pass 1: partitioned (Eq. 2) -------------------------------------
    // Per segment one engine per partition; distances are priced at every
    // requested way split in one go.
    std::vector<std::unique_ptr<ReuseEngine>> eng0, eng1;
    for (std::int64_t s = 0; s < segments; ++s) {
        eng0.push_back(make_engine(engine_kind, lines_hint,
                                   options.kim_group_capacity));
        eng1.push_back(make_engine(engine_kind, lines_hint,
                                   options.kim_group_capacity));
    }
    CapacityMissCounter cnt0(caps0), cnt1(caps1), cnt_x(caps0);

    bool counting = false;
    auto partitioned_sink = [&](const MemRef& ref) {
        if (ref.is_prefetch) return;  // the model sees demand accesses only
        const std::size_t seg = segment_of(ref.thread);
        const int sector = sector_of(ref.object, options.policy);
        const std::uint64_t d = (sector == 1 ? eng1 : eng0)[seg]->access(
            ref.line);
        if (!counting) return;
        if (sector == 1) {
            cnt1.record(d);
        } else {
            cnt0.record(d);
            if (ref.object == DataObject::X) cnt_x.record(d);
        }
    };
    generate_spmv_trace(m, layout, trace_cfg, partitioned_sink);  // warm-up
    counting = true;
    generate_spmv_trace(m, layout, trace_cfg, partitioned_sink);  // measured
    eng0.clear();
    eng1.clear();

    // ---- Pass 2: unpartitioned, plus the per-core L1 model ---------------
    std::vector<std::unique_ptr<ReuseEngine>> engU;
    for (std::int64_t s = 0; s < segments; ++s)
        engU.push_back(make_engine(engine_kind, lines_hint,
                                   options.kim_group_capacity));
    std::vector<std::unique_ptr<ReuseEngine>> engL1;
    if (options.predict_l1) {
        for (std::int64_t c = 0; c < options.threads; ++c)
            engL1.push_back(make_engine(engine_kind, 4096,
                                        options.kim_group_capacity));
    }
    CapacityMissCounter cntU({cap_full}), cnt_xU({cap_full});
    const std::uint64_t l1_cap = machine.l1.lines();
    CapacityMissCounter cntL1({l1_cap}), cnt_xL1({l1_cap});

    counting = false;
    auto unpartitioned_sink = [&](const MemRef& ref) {
        if (ref.is_prefetch) return;
        const std::uint64_t d =
            engU[segment_of(ref.thread)]->access(ref.line);
        std::uint64_t dl1 = 0;
        if (options.predict_l1)
            dl1 = engL1[ref.thread]->access(ref.line);
        if (!counting) return;
        cntU.record(d);
        if (ref.object == DataObject::X) cnt_xU.record(d);
        if (options.predict_l1) {
            cntL1.record(dl1);
            if (ref.object == DataObject::X) cnt_xL1.record(dl1);
        }
    };
    generate_spmv_trace(m, layout, trace_cfg, unpartitioned_sink);  // warm-up
    counting = true;
    generate_spmv_trace(m, layout, trace_cfg, unpartitioned_sink);  // measured

    // ---- Assemble ---------------------------------------------------------
    ModelResult result;
    {
        ConfigPrediction off;
        off.l2_sector_ways = 0;
        // Cold misses count as misses: a line never seen in the warm-up
        // iteration cannot be resident, whatever the capacity.
        off.l2_misses =
            static_cast<double>(cntU.total_misses(cap_full));
        off.l2_x_misses =
            static_cast<double>(cnt_xU.total_misses(cap_full));
        result.configs.push_back(off);
    }
    for (std::size_t i = 0; i < options.l2_way_options.size(); ++i) {
        ConfigPrediction p;
        p.l2_sector_ways = options.l2_way_options[i];
        p.l2_misses = static_cast<double>(cnt0.total_misses(caps0[i]) +
                                          cnt1.total_misses(caps1[i]));
        p.l2_x_misses = static_cast<double>(cnt_x.total_misses(caps0[i]));
        result.configs.push_back(p);
    }
    if (options.predict_l1) {
        result.l1_misses = static_cast<double>(cntL1.total_misses(l1_cap));
        result.l1_x_misses =
            static_cast<double>(cnt_xL1.total_misses(l1_cap));
    }
    const double total_unpart = result.configs.front().l2_misses;
    result.x_traffic_fraction =
        total_unpart > 0.0 ? result.configs.front().l2_x_misses / total_unpart
                           : 0.0;
    result.seconds = timer.seconds();
    return result;
}

}  // namespace spmvcache
