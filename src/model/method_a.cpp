#include "model/method_a.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "model/replay.hpp"
#include "model/shard.hpp"
#include "reuse/histogram.hpp"
#include "reuse/kim.hpp"
#include "reuse/olken.hpp"
#include "reuse/sampled.hpp"
#include "trace/packed_trace.hpp"
#include "trace/spmv_trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace spmvcache {

const ConfigPrediction* ModelResult::find_ptr(
    std::uint32_t l2_sector_ways) const noexcept {
    for (const auto& c : configs)
        if (c.l2_sector_ways == l2_sector_ways) return &c;
    return nullptr;
}

[[nodiscard]] Result<ConfigPrediction> ModelResult::find(
    std::uint32_t l2_sector_ways) const {
    if (const ConfigPrediction* p = find_ptr(l2_sector_ways)) return *p;
    return Error(ErrorCode::ValidationError,
                 "no prediction for " + std::to_string(l2_sector_ways) +
                     " L2 sector ways in this run");
}

const ConfigPrediction& ModelResult::at(std::uint32_t l2_sector_ways) const {
    if (const ConfigPrediction* p = find_ptr(l2_sector_ways)) return *p;
    throw_status(Error(ErrorCode::ValidationError,
                       "no prediction for " +
                           std::to_string(l2_sector_ways) +
                           " L2 sector ways in this run"));
}

namespace {

/// Concrete-engine construction for the shard bodies, which are templated
/// on the engine type so every access in the hot loops is devirtualized
/// (the ReuseEngine interface remains for tests and tools).
template <class Engine>
struct EngineMaker;

template <>
struct EngineMaker<KimEngine> {
    static KimEngine make(std::size_t /*lines_hint*/,
                          std::uint64_t group_capacity,
                          const SampleFilter& /*filter*/) {
        return KimEngine(group_capacity);
    }
};

template <>
struct EngineMaker<OlkenEngine> {
    static OlkenEngine make(std::size_t lines_hint,
                            std::uint64_t /*group_capacity*/,
                            const SampleFilter& /*filter*/) {
        return OlkenEngine(lines_hint);
    }
};

/// Sampled variants: the adapter carries the run's SHARDS filter; hints
/// shrink by R because the engine only ever tracks the kept subset.
template <>
struct EngineMaker<SampledEngine<KimEngine>> {
    static SampledEngine<KimEngine> make(std::size_t /*lines_hint*/,
                                         std::uint64_t group_capacity,
                                         const SampleFilter& filter) {
        return SampledEngine<KimEngine>(filter, group_capacity);
    }
};

template <>
struct EngineMaker<SampledEngine<OlkenEngine>> {
    static SampledEngine<OlkenEngine> make(std::size_t lines_hint,
                                           std::uint64_t /*group_capacity*/,
                                           const SampleFilter& filter) {
        const auto hint = static_cast<std::size_t>(
            static_cast<double>(lines_hint) * filter.rate());
        return SampledEngine<OlkenEngine>(filter, hint + 64);
    }
};

/// Everything one shard accumulates; queried after the parallel phase.
/// Summing per-shard counters yields the same integer totals the single
/// global counters accumulated before sharding, so predictions are
/// bit-identical for any job count.
struct ShardCounters {
    ShardCounters(const std::vector<std::uint64_t>& caps0,
                  const std::vector<std::uint64_t>& caps1,
                  std::uint64_t cap_full, std::uint64_t l1_cap)
        : cnt0(caps0),
          cnt1(caps1),
          cnt_x(caps0),
          cntU({cap_full}),
          cnt_xU({cap_full}),
          cntL1({l1_cap}),
          cnt_xL1({l1_cap}) {}

    CapacityMissCounter cnt0, cnt1, cnt_x;  // partitioned pass (Eq. 2)
    CapacityMissCounter cntU, cnt_xU;       // unpartitioned pass
    CapacityMissCounter cntL1, cnt_xL1;     // per-core L1 model
    std::uint64_t references = 0;
    std::uint64_t sampled_refs = 0;
    double seconds = 0.0;
    bool packed = false;
};

/// The engines one shard feeds: both sectors, the unpartitioned pass, and
/// (optionally) one per-core L1 engine per simulated thread.
template <class Engine>
struct ShardEngines {
    ShardEngines(std::size_t lines_hint, std::uint64_t group_capacity,
                 std::int64_t l1_engines, const SampleFilter& filter)
        : eng0(EngineMaker<Engine>::make(lines_hint, group_capacity, filter)),
          eng1(EngineMaker<Engine>::make(lines_hint, group_capacity, filter)),
          engU(EngineMaker<Engine>::make(lines_hint, group_capacity, filter)) {
        engL1.reserve(static_cast<std::size_t>(l1_engines));
        for (std::int64_t c = 0; c < l1_engines; ++c)
            engL1.push_back(
                EngineMaker<Engine>::make(4096, group_capacity, filter));
    }

    Engine eng0, eng1, engU;
    std::vector<Engine> engL1;
};

/// References the engines consume per access_batch call. Large enough to
/// amortize the gather/scatter bookkeeping and keep the prefetch pipeline
/// full, small enough that the scratch arrays stay L2-resident.
constexpr std::size_t kReplayBatch = 1024;

/// Reusable per-chunk gather/scatter scratch for the packed replay.
struct ReplayScratch {
    explicit ReplayScratch(std::size_t l1_engines)
        : linesL1(l1_engines), distL1(l1_engines), xL1(l1_engines) {
        linesU.reserve(kReplayBatch);
        lines0.reserve(kReplayBatch);
        lines1.reserve(kReplayBatch);
        xU.reserve(kReplayBatch);
        x0.reserve(kReplayBatch);
        for (std::size_t t = 0; t < l1_engines; ++t) {
            linesL1[t].reserve(kReplayBatch);
            xL1[t].reserve(kReplayBatch);
        }
    }

    std::vector<std::uint64_t> linesU, lines0, lines1;
    std::vector<std::uint64_t> distU, dist0, dist1;
    std::vector<unsigned char> xU, x0;  // x-vector flags (x is sector 0)
    std::vector<std::vector<std::uint64_t>> linesL1, distL1;
    std::vector<std::vector<unsigned char>> xL1;
};

/// One replay pass over a packed segment buffer. Per chunk: gather each
/// engine's lines (each engine sees exactly its trace-order subsequence,
/// so distances are bit-identical to the streaming pass), run the batched
/// prefetch-pipelined engine paths, then scatter distances into the
/// counters (counted pass only).
template <class Engine>
void replay_packed_pass(const std::vector<std::uint64_t>& buffer,
                        SectorPolicy policy, std::int64_t t_begin,
                        ShardEngines<Engine>& eng, ReplayScratch& scratch,
                        ShardCounters& st, bool counting) {
    const std::size_t l1_engines = eng.engL1.size();
    for (std::size_t begin = 0; begin < buffer.size();
         begin += kReplayBatch) {
        const std::size_t end =
            std::min(buffer.size(), begin + kReplayBatch);
        scratch.linesU.clear();
        scratch.lines0.clear();
        scratch.lines1.clear();
        scratch.xU.clear();
        scratch.x0.clear();
        for (std::size_t t = 0; t < l1_engines; ++t) {
            scratch.linesL1[t].clear();
            scratch.xL1[t].clear();
        }

        for (std::size_t i = begin; i < end; ++i) {
            const std::uint64_t word = buffer[i];
            if (packed_is_prefetch(word)) continue;  // demand accesses only
            const std::uint64_t line = packed_line(word);
            const DataObject object = packed_object(word);
            const unsigned char is_x = object == DataObject::X ? 1 : 0;
            scratch.linesU.push_back(line);
            scratch.xU.push_back(is_x);
            if (sector_of(object, policy) == 1) {
                scratch.lines1.push_back(line);
            } else {
                scratch.lines0.push_back(line);
                scratch.x0.push_back(is_x);
            }
            if (l1_engines > 0) {
                const auto tl = static_cast<std::size_t>(
                    static_cast<std::int64_t>(packed_thread(word)) -
                    t_begin);
                scratch.linesL1[tl].push_back(line);
                scratch.xL1[tl].push_back(is_x);
            }
        }

        scratch.distU.resize(scratch.linesU.size());
        scratch.dist0.resize(scratch.lines0.size());
        scratch.dist1.resize(scratch.lines1.size());
        eng.engU.access_batch(scratch.linesU.data(), scratch.distU.data(),
                              scratch.linesU.size());
        eng.eng0.access_batch(scratch.lines0.data(), scratch.dist0.data(),
                              scratch.lines0.size());
        eng.eng1.access_batch(scratch.lines1.data(), scratch.dist1.data(),
                              scratch.lines1.size());
        for (std::size_t t = 0; t < l1_engines; ++t) {
            scratch.distL1[t].resize(scratch.linesL1[t].size());
            eng.engL1[t].access_batch(scratch.linesL1[t].data(),
                                      scratch.distL1[t].data(),
                                      scratch.linesL1[t].size());
        }

        if (!counting) continue;
        st.references += scratch.linesU.size();
        for (std::size_t i = 0; i < scratch.dist0.size(); ++i) {
            st.cnt0.record(scratch.dist0[i]);
            if (scratch.x0[i]) st.cnt_x.record(scratch.dist0[i]);
        }
        for (std::size_t i = 0; i < scratch.dist1.size(); ++i)
            st.cnt1.record(scratch.dist1[i]);
        for (std::size_t i = 0; i < scratch.distU.size(); ++i) {
            st.cntU.record(scratch.distU[i]);
            if (scratch.xU[i]) st.cnt_xU.record(scratch.distU[i]);
        }
        for (std::size_t t = 0; t < l1_engines; ++t)
            for (std::size_t i = 0; i < scratch.distL1[t].size(); ++i) {
                st.cntL1.record(scratch.distL1[t][i]);
                if (scratch.xL1[t][i])
                    st.cnt_xL1.record(scratch.distL1[t][i]);
            }
    }
}

/// Inputs shared by every shard of one run.
template <class Idx>
struct ShardContext {
    const BasicCsrView<Idx>& m;
    const SpmvLayout& layout;
    const ModelOptions& options;
    TraceConfig trace_cfg;
    std::size_t lines_hint = 0;
    std::vector<std::uint64_t> segment_lengths;  ///< demand refs per segment
    std::uint64_t shard_budget_bytes = 0;
    /// The run's SHARDS filter (exact unless sampling is on); shared by
    /// the packed-trace pre-filter and the shard engines so both agree on
    /// the kept line subset.
    SampleFilter filter;
};

/// One shard = one L2 segment. Derives the segment's slice of the trace
/// once into a packed buffer when it fits the shard's budget (replayed for
/// warm-up + counted pass through the batched engine paths), or streams
/// the derivation twice through a fused per-reference sink otherwise.
/// Both paths feed the partitioned engines (Eq. 2), the unpartitioned
/// engine, and the segment's per-core L1 engines, and produce bit-identical
/// counter totals.
template <class Idx, class Engine>
void run_shard(const ShardContext<Idx>& ctx, std::int64_t s,
               ShardCounters& st) {
    const Timer shard_timer;
    const ModelOptions& options = ctx.options;
    const auto& machine = options.machine;
    const std::int64_t t_begin = s * machine.cores_per_numa;
    const std::int64_t t_count =
        std::min(options.threads, t_begin + machine.cores_per_numa) - t_begin;

    ShardEngines<Engine> eng(ctx.lines_hint, options.kim_group_capacity,
                             options.predict_l1 ? t_count : 0, ctx.filter);

    const std::optional<std::vector<std::uint64_t>> packed =
        detail::pack_segment_within_budget(
            ctx.m, ctx.layout, ctx.trace_cfg, machine.cores_per_numa, s,
            ctx.segment_lengths[static_cast<std::size_t>(s)],
            ctx.shard_budget_bytes, ctx.filter);
    st.packed = packed.has_value();

    if (packed.has_value()) {
        ReplayScratch scratch(eng.engL1.size());
        replay_packed_pass(*packed, options.policy, t_begin, eng, scratch,
                           st, /*counting=*/false);  // warm-up
        replay_packed_pass(*packed, options.policy, t_begin, eng, scratch,
                           st, /*counting=*/true);  // measured
        // A sampled buffer holds only the kept references, so the replay
        // counted the sampled subset; the full demand count comes from
        // the segment lengths.
        st.sampled_refs = st.references;
        if (!ctx.filter.exact())
            st.references = ctx.segment_lengths[static_cast<std::size_t>(s)];
        st.seconds = shard_timer.seconds();
        return;
    }

    // Streaming fallback: derive the segment trace twice through a fused
    // per-reference sink (the pre-packing pipeline, devirtualized).
    bool counting = false;
    auto sink = [&](const MemRef& ref) {
        if (ref.is_prefetch) return;  // the model sees demand accesses
        const int sector = sector_of(ref.object, options.policy);
        const std::uint64_t dp =
            (sector == 1 ? eng.eng1 : eng.eng0).access_one(ref.line);
        if (dp == kSkippedDistance) {
            // The sampling filter rejected this line; every engine would
            // agree (same hash), so skip them and record nothing.
            if (counting) ++st.references;
            return;
        }
        const std::uint64_t du = eng.engU.access_one(ref.line);
        std::uint64_t dl1 = 0;
        if (options.predict_l1)
            dl1 = eng.engL1[static_cast<std::size_t>(
                                static_cast<std::int64_t>(ref.thread) -
                                t_begin)]
                      .access_one(ref.line);
        if (!counting) return;
        ++st.references;
        ++st.sampled_refs;
        if (sector == 1) {
            st.cnt1.record(dp);
        } else {
            st.cnt0.record(dp);
            if (ref.object == DataObject::X) st.cnt_x.record(dp);
        }
        st.cntU.record(du);
        if (ref.object == DataObject::X) st.cnt_xU.record(du);
        if (options.predict_l1) {
            st.cntL1.record(dl1);
            if (ref.object == DataObject::X) st.cnt_xL1.record(dl1);
        }
    };
    generate_spmv_trace_segment(ctx.m, ctx.layout, ctx.trace_cfg,
                                machine.cores_per_numa, s,
                                sink);  // warm-up
    counting = true;
    generate_spmv_trace_segment(ctx.m, ctx.layout, ctx.trace_cfg,
                                machine.cores_per_numa, s,
                                sink);  // measured
    st.seconds = shard_timer.seconds();
}

}  // namespace

/// The templated body behind the AnyCsrView entry point. The trace layout
/// spaces colidx/rowptr at the *accounted* element sizes, so a W32 matrix
/// touches half the index lines a W64 one does — unless the caller pins
/// the accounting (the width-differential tests do exactly that).
template <class Idx>
ModelResult run_method_a_impl(const BasicCsrView<Idx>& m,
                              const ModelOptions& options,
                              EngineKind engine_kind) {
    SPMV_EXPECTS(options.threads >= 1);
    SPMV_EXPECTS(options.threads <= options.machine.cores);
    SPMV_EXPECTS(options.jobs >= 0);
    SPMV_EXPECTS(options.sample_rate > 0.0 && options.sample_rate <= 1.0);
    const Timer timer;

    // Resolved once per run: every shard (and the packed-trace
    // pre-filter) shares this filter, so all passes agree on the kept
    // line subset. An armed `reuse.sample` fault yields the exact filter
    // here — the whole run degrades to exact computation.
    const SampleFilter filter =
        detail::resolve_sample_filter(options.sample_rate);

    const auto& machine = options.machine;
    const SpmvLayout layout(m.rows(), m.cols(), m.nnz(),
                            machine.l2.line_bytes,
                            options.colidx_bytes_for(Idx::width),
                            options.rowptr_bytes_for(Idx::width));
    const std::int64_t segments =
        trace_segment_count(options.threads, machine.cores_per_numa);
    const std::uint64_t l2_sets = machine.l2.sets();
    const std::uint64_t l2_total_ways = machine.l2.ways;

    // Partition capacities (in lines) priced by the partitioned pass.
    std::vector<std::uint64_t> caps0;  // sector 0: (ways - w) * sets
    std::vector<std::uint64_t> caps1;  // sector 1: w * sets
    for (const auto w : options.l2_way_options) {
        SPMV_EXPECTS(w >= 1 && w < l2_total_ways);
        caps0.push_back((l2_total_ways - w) * l2_sets);
        caps1.push_back(static_cast<std::uint64_t>(w) * l2_sets);
    }
    const std::uint64_t cap_full = l2_total_ways * l2_sets;
    const std::uint64_t l1_cap = machine.l1.lines();
    const std::int64_t jobs = detail::resolve_model_jobs(options.jobs);
    const std::int64_t effective_jobs =
        std::max<std::int64_t>(1, std::min(jobs, segments));

    ShardContext<Idx> ctx{m, layout, options,
                     TraceConfig{options.threads, options.partition,
                                 options.quantum},
                     static_cast<std::size_t>(
                         layout.total_lines() /
                         static_cast<std::uint64_t>(segments)) +
                         64,
                     spmv_segment_lengths(
                         m,
                         TraceConfig{options.threads, options.partition,
                                     options.quantum},
                         machine.cores_per_numa),
                     detail::resolve_trace_buffer_bytes(
                         options.trace_buffer_bytes) /
                         static_cast<std::uint64_t>(effective_jobs),
                     filter};

    std::vector<ShardCounters> shard_state;
    shard_state.reserve(static_cast<std::size_t>(segments));
    for (std::int64_t s = 0; s < segments; ++s)
        shard_state.emplace_back(caps0, caps1, cap_full, l1_cap);

    detail::for_each_shard(segments, jobs, [&](std::int64_t s) {
        auto& st = shard_state[static_cast<std::size_t>(s)];
        if (engine_kind == EngineKind::Kim) {
            if (filter.exact())
                run_shard<Idx, KimEngine>(ctx, s, st);
            else
                run_shard<Idx, SampledEngine<KimEngine>>(ctx, s, st);
        } else {
            if (filter.exact())
                run_shard<Idx, OlkenEngine>(ctx, s, st);
            else
                run_shard<Idx, SampledEngine<OlkenEngine>>(ctx, s, st);
        }
    });

    // ---- Assemble ---------------------------------------------------------
    // Under sampling each recorded reference stands for 1/R of the full
    // trace, so the integer counter totals are scaled once here (scale is
    // exactly 1.0 for exact runs — multiplying preserves bit-identity).
    const double scale = filter.inverse_rate();
    ModelResult result;
    result.sampled = !filter.exact();
    result.sample_rate = filter.rate();
    {
        ConfigPrediction off;
        off.l2_sector_ways = 0;
        // Cold misses count as misses: a line never seen in the warm-up
        // iteration cannot be resident, whatever the capacity.
        std::uint64_t misses = 0, x_misses = 0;
        for (const auto& st : shard_state) {
            misses += st.cntU.total_misses(cap_full);
            x_misses += st.cnt_xU.total_misses(cap_full);
        }
        off.l2_misses = static_cast<double>(misses) * scale;
        off.l2_x_misses = static_cast<double>(x_misses) * scale;
        result.configs.push_back(off);
    }
    for (std::size_t i = 0; i < options.l2_way_options.size(); ++i) {
        ConfigPrediction p;
        p.l2_sector_ways = options.l2_way_options[i];
        std::uint64_t misses = 0, x_misses = 0;
        for (const auto& st : shard_state) {
            misses += st.cnt0.total_misses(caps0[i]) +
                      st.cnt1.total_misses(caps1[i]);
            x_misses += st.cnt_x.total_misses(caps0[i]);
        }
        p.l2_misses = static_cast<double>(misses) * scale;
        p.l2_x_misses = static_cast<double>(x_misses) * scale;
        result.configs.push_back(p);
    }
    if (options.predict_l1) {
        std::uint64_t misses = 0, x_misses = 0;
        for (const auto& st : shard_state) {
            misses += st.cntL1.total_misses(l1_cap);
            x_misses += st.cnt_xL1.total_misses(l1_cap);
        }
        result.l1_misses = static_cast<double>(misses) * scale;
        result.l1_x_misses = static_cast<double>(x_misses) * scale;
    }
    const double total_unpart = result.configs.front().l2_misses;
    result.x_traffic_fraction =
        total_unpart > 0.0 ? result.configs.front().l2_x_misses / total_unpart
                           : 0.0;
    for (std::int64_t s = 0; s < segments; ++s) {
        const auto& st = shard_state[static_cast<std::size_t>(s)];
        const std::int64_t t_begin = s * machine.cores_per_numa;
        result.shards.push_back(ShardStats{
            s,
            std::min(options.threads, t_begin + machine.cores_per_numa) -
                t_begin,
            st.references, st.seconds, st.packed, st.sampled_refs});
        result.sampled_refs += st.sampled_refs;
    }
    result.jobs = effective_jobs;
    result.seconds = timer.seconds();
    return result;
}

ModelResult run_method_a(const AnyCsrView& m, const ModelOptions& options,
                         EngineKind engine_kind) {
    return m.visit([&](const auto& v) {
        return run_method_a_impl(v, options, engine_kind);
    });
}

}  // namespace spmvcache
