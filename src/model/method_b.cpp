#include "model/method_b.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "model/analytic.hpp"
#include "model/replay.hpp"
#include "model/shard.hpp"
#include "reuse/histogram.hpp"
#include "reuse/olken.hpp"
#include "trace/packed_trace.hpp"
#include "trace/spmv_trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace spmvcache {

namespace {

/// Rows/nonzeros owned by one L2 segment's threads.
struct SegmentShare {
    std::int64_t rows = 0;
    std::int64_t nnz = 0;
};

template <class Idx>
std::vector<SegmentShare> segment_shares(const BasicCsrView<Idx>& m,
                                         const RowPartition& partition,
                                         std::int64_t segments,
                                         std::int64_t cores_per_numa) {
    std::vector<SegmentShare> shares(static_cast<std::size_t>(segments));
    const auto rowptr = m.rowptr();
    for (std::int64_t t = 0; t < partition.threads(); ++t) {
        const auto seg = static_cast<std::size_t>(t / cores_per_numa);
        const auto& range = partition.range(t);
        shares[seg].rows += range.size();
        shares[seg].nnz +=
            static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(range.end)]) -
            static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(range.begin)]);
    }
    return shares;
}

std::uint64_t scaled_capacity(std::uint64_t lines, double factor) {
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(static_cast<double>(lines) / factor)));
}

}  // namespace

/// The templated body behind the AnyCsrView entry point. `ci`/`rp` are
/// the accounted colidx/rowptr element sizes (physical storage width by
/// default, ModelOptions override otherwise); they parameterise the trace
/// layout, the §3.1 streaming terms, the s1/s2 scaling factors and every
/// working-set byte count below — the paper's constants (12K, 16M, +8)
/// are the ci=4, rp=8 specialisation.
template <class Idx>
ModelResult run_method_b_impl(const BasicCsrView<Idx>& m,
                              const ModelOptions& options) {
    SPMV_EXPECTS(options.threads >= 1);
    SPMV_EXPECTS(options.threads <= options.machine.cores);
    SPMV_EXPECTS(options.jobs >= 0);
    SPMV_EXPECTS(options.sample_rate > 0.0 && options.sample_rate <= 1.0);
    const Timer timer;

    // One filter per run, shared by the packed-trace pre-filter and the
    // x-vector stack passes; the analytic streaming terms below stay
    // exact — sampling only approximates the reuse-distance part. An
    // armed `reuse.sample` fault degrades the run to exact computation.
    const SampleFilter filter =
        detail::resolve_sample_filter(options.sample_rate);

    const std::uint64_t ci = options.colidx_bytes_for(Idx::width);
    const std::uint64_t rp = options.rowptr_bytes_for(Idx::width);
    const auto& machine = options.machine;
    const SpmvLayout layout(m.rows(), m.cols(), m.nnz(),
                            machine.l2.line_bytes,
                            static_cast<std::uint32_t>(ci),
                            static_cast<std::uint32_t>(rp));
    const std::int64_t segments =
        trace_segment_count(options.threads, machine.cores_per_numa);
    const std::uint64_t line_bytes = machine.l2.line_bytes;
    const std::uint64_t l2_sets = machine.l2.sets();
    const std::uint64_t l2_ways = machine.l2.ways;
    const std::uint64_t cap_full = l2_ways * l2_sets;
    const std::uint64_t cache_bytes = machine.l2.size_bytes;

    const RowPartition partition(m, options.threads, options.partition);
    const auto shares =
        segment_shares(m, partition, segments, machine.cores_per_numa);

    // Per-segment scaling factors from the segment's own rows/nonzeros.
    std::vector<double> s1(static_cast<std::size_t>(segments));
    std::vector<double> s2(static_cast<std::size_t>(segments));
    for (std::size_t g = 0; g < shares.size(); ++g) {
        const std::int64_t k = std::max<std::int64_t>(1, shares[g].nnz);
        s1[g] = scaling_factor_partitioned(
            shares[g].rows, k, static_cast<std::uint32_t>(rp));
        s2[g] = scaling_factor_unpartitioned(
            shares[g].rows, k, static_cast<std::uint32_t>(ci),
            static_cast<std::uint32_t>(rp));
    }

    // Per-segment scaled capacities. For the partitioned entries the x
    // vector lives in sector 0: capacity (ways - w) * sets, divided by s1;
    // unpartitioned: full capacity divided by s2.
    std::vector<std::vector<std::uint64_t>> capsP(
        static_cast<std::size_t>(segments));
    std::vector<std::uint64_t> capU(static_cast<std::size_t>(segments));
    for (std::size_t g = 0; g < capsP.size(); ++g) {
        for (const auto w : options.l2_way_options) {
            SPMV_EXPECTS(w >= 1 && w < l2_ways);
            capsP[g].push_back(
                scaled_capacity((l2_ways - w) * l2_sets, s1[g]));
        }
        capU[g] = scaled_capacity(cap_full, s2[g]);
    }

    // One counter set per segment for the L2 (a single stack pass serves
    // both the partitioned and unpartitioned cases — the distances are the
    // same, only the evaluation thresholds differ) plus one for the
    // per-core L1 model. Counters are created up front because the
    // analytic assembly reads them; the stack engines live inside the
    // shard bodies, which run concurrently on up to `jobs` host workers
    // (each shard touches only its own segment's slice of the trace).
    std::vector<std::unique_ptr<CapacityMissCounter>> cntP(
        static_cast<std::size_t>(segments));
    std::vector<std::unique_ptr<CapacityMissCounter>> cntU(
        static_cast<std::size_t>(segments));
    const std::uint64_t x_lines_hint = layout.lines_of(DataObject::X) + 64;
    for (std::size_t g = 0; g < cntP.size(); ++g) {
        cntP[g] = std::make_unique<CapacityMissCounter>(capsP[g]);
        cntU[g] = std::make_unique<CapacityMissCounter>(
            std::vector<std::uint64_t>{capU[g]});
    }

    const std::uint64_t l1_lines = machine.l1.lines();
    std::vector<std::uint64_t> capL1(static_cast<std::size_t>(segments));
    std::vector<std::unique_ptr<CapacityMissCounter>> cntL1(
        static_cast<std::size_t>(segments));
    if (options.predict_l1) {
        for (std::size_t g = 0; g < capL1.size(); ++g) {
            capL1[g] = scaled_capacity(l1_lines, s2[g]);
            cntL1[g] = std::make_unique<CapacityMissCounter>(
                std::vector<std::uint64_t>{capL1[g]});
        }
    }

    const TraceConfig trace_cfg{options.threads, options.partition,
                                options.quantum};
    const std::int64_t jobs = detail::resolve_model_jobs(options.jobs);
    const std::int64_t effective_jobs =
        std::max<std::int64_t>(1, std::min(jobs, segments));
    const auto segment_lengths =
        spmv_segment_lengths(m, trace_cfg, machine.cores_per_numa);
    const std::uint64_t shard_budget =
        detail::resolve_trace_buffer_bytes(options.trace_buffer_bytes) /
        static_cast<std::uint64_t>(effective_jobs);
    std::vector<ShardStats> shard_stats(static_cast<std::size_t>(segments));
    detail::for_each_shard(segments, jobs, [&](std::int64_t g) {
        const Timer shard_timer;
        auto& st = shard_stats[static_cast<std::size_t>(g)];
        const std::int64_t t_begin = g * machine.cores_per_numa;
        const std::int64_t t_count =
            std::min(options.threads, t_begin + machine.cores_per_numa) -
            t_begin;
        OlkenEngine eng(static_cast<std::size_t>(x_lines_hint));
        std::vector<OlkenEngine> engL1;
        if (options.predict_l1) {
            engL1.reserve(static_cast<std::size_t>(t_count));
            for (std::int64_t c = 0; c < t_count; ++c)
                engL1.emplace_back(4096);
        }
        auto& cnt_p = *cntP[static_cast<std::size_t>(g)];
        auto& cnt_u = *cntU[static_cast<std::size_t>(g)];

        const std::optional<std::vector<std::uint64_t>> packed =
            detail::pack_segment_within_budget(
                m, layout, trace_cfg, machine.cores_per_numa, g,
                segment_lengths[static_cast<std::size_t>(g)], shard_budget,
                filter);
        st.packed_replay = packed.has_value();

        if (packed.has_value()) {
            // Derive once, replay twice: method (B)'s engines only consume
            // x-vector references, so the replay gathers those per owner
            // (L2 engine + per-core L1 engines) and runs the batched,
            // prefetch-pipelined access path. Counters accumulate, so
            // scatter order is free — totals are bit-identical to the
            // streaming sink below.
            std::vector<std::uint64_t> lines_x, dist_x;
            std::vector<std::vector<std::uint64_t>> linesL1(engL1.size()),
                distL1(engL1.size());
            for (const bool counting : {false, true}) {
                std::uint64_t refs = 0;
                lines_x.clear();
                for (auto& v : linesL1) v.clear();
                for (const std::uint64_t word : *packed) {
                    if (packed_is_prefetch(word)) continue;
                    ++refs;
                    if (packed_object(word) != DataObject::X) continue;
                    const std::uint64_t line = packed_line(word);
                    lines_x.push_back(line);
                    if (!engL1.empty())
                        linesL1[static_cast<std::size_t>(
                                    static_cast<std::int64_t>(
                                        packed_thread(word)) -
                                    t_begin)]
                            .push_back(line);
                }
                dist_x.resize(lines_x.size());
                eng.access_batch(lines_x.data(), dist_x.data(),
                                 lines_x.size());
                for (std::size_t t = 0; t < engL1.size(); ++t) {
                    distL1[t].resize(linesL1[t].size());
                    engL1[t].access_batch(linesL1[t].data(),
                                          distL1[t].data(),
                                          linesL1[t].size());
                }
                if (!counting) continue;
                st.references += refs;
                for (const std::uint64_t d : dist_x) {
                    const std::uint64_t ds = filter.scale_distance(d);
                    cnt_p.record(ds);
                    cnt_u.record(ds);
                }
                if (options.predict_l1)
                    for (const auto& dists : distL1)
                        for (const std::uint64_t d : dists)
                            cntL1[static_cast<std::size_t>(g)]->record(
                                filter.scale_distance(d));
            }
            // A sampled buffer holds only the kept references, so the
            // replay counted the sampled subset; the full demand count
            // comes from the segment lengths.
            st.sampled_refs = st.references;
            if (!filter.exact())
                st.references =
                    segment_lengths[static_cast<std::size_t>(g)];
        } else {
            bool counting = false;
            auto sink = [&](const MemRef& ref) {
                if (ref.is_prefetch) return;
                const bool kept = filter.keep(ref.line);
                if (counting) {
                    ++st.references;
                    if (kept) ++st.sampled_refs;
                }
                if (!kept || ref.object != DataObject::X) return;
                const std::uint64_t d =
                    filter.scale_distance(eng.access_one(ref.line));
                std::uint64_t dl1 = 0;
                if (options.predict_l1)
                    dl1 = filter.scale_distance(
                        engL1[static_cast<std::size_t>(
                                  static_cast<std::int64_t>(ref.thread) -
                                  t_begin)]
                            .access_one(ref.line));
                if (!counting) return;
                cnt_p.record(d);
                cnt_u.record(d);
                if (options.predict_l1)
                    cntL1[static_cast<std::size_t>(g)]->record(dl1);
            };
            generate_spmv_trace_segment(m, layout, trace_cfg,
                                        machine.cores_per_numa, g,
                                        sink);  // warm-up
            counting = true;
            generate_spmv_trace_segment(m, layout, trace_cfg,
                                        machine.cores_per_numa, g,
                                        sink);  // measured
        }
        st.segment = g;
        st.threads = t_count;
        st.seconds = shard_timer.seconds();
    });

    // ---- Analytic terms for a, colidx, rowptr and y (§3.1 / §3.2.2) ------
    // Sampled counter totals scale by 1/R (exactly 1.0 for exact runs);
    // the analytic streaming terms are closed-form and never sampled.
    const double scale = filter.inverse_rate();
    ModelResult result;
    result.sampled = !filter.exact();
    result.sample_rate = filter.rate();
    const std::uint64_t x_bytes = static_cast<std::uint64_t>(m.cols()) * 8;

    // Unpartitioned entry.
    {
        ConfigPrediction off;
        off.l2_sector_ways = 0;
        for (std::size_t g = 0; g < shares.size(); ++g) {
            const auto stream = streaming_misses(
                shares[g].rows, shares[g].nnz, line_bytes,
                static_cast<std::uint32_t>(ci),
                static_cast<std::uint32_t>(rp));
            const std::uint64_t ws_seg =
                (8 + ci) * static_cast<std::uint64_t>(shares[g].nnz) +
                (8 + rp) * static_cast<std::uint64_t>(shares[g].rows) +
                x_bytes;
            const double x_misses =
                static_cast<double>(cntU[g]->total_misses(capU[g])) * scale;
            off.l2_x_misses += x_misses;
            off.l2_misses += x_misses;
            if (ws_seg > cache_bytes)
                off.l2_misses += static_cast<double>(stream.total());
        }
        result.configs.push_back(off);
    }

    // Partitioned entries.
    for (std::size_t i = 0; i < options.l2_way_options.size(); ++i) {
        const std::uint32_t w = options.l2_way_options[i];
        ConfigPrediction p;
        p.l2_sector_ways = w;
        const std::uint64_t n1_bytes =
            static_cast<std::uint64_t>(w) * l2_sets * line_bytes;
        const std::uint64_t n0_bytes =
            (l2_ways - w) * l2_sets * line_bytes;
        for (std::size_t g = 0; g < shares.size(); ++g) {
            const auto stream = streaming_misses(
                shares[g].rows, shares[g].nnz, line_bytes,
                static_cast<std::uint32_t>(ci),
                static_cast<std::uint32_t>(rp));
            const std::uint64_t matrix_bytes =
                (8 + ci) * static_cast<std::uint64_t>(shares[g].nnz);
            // y + rowptr per row, plus the rowptr array's final element.
            const std::uint64_t reusable_bytes =
                x_bytes + (8 + rp) * static_cast<std::uint64_t>(shares[g].rows) +
                rp;
            const double x_misses =
                static_cast<double>(cntP[g]->total_misses(capsP[g][i])) *
                scale;
            p.l2_x_misses += x_misses;
            p.l2_misses += x_misses;
            if (matrix_bytes > n1_bytes)
                p.l2_misses += static_cast<double>(stream.matrix_data());
            if (reusable_bytes > n0_bytes)
                p.l2_misses +=
                    static_cast<double>(stream.rowptr + stream.y);
        }
        result.configs.push_back(p);
    }

    // L1 prediction (§4.5.4): x misses from the per-core engines plus
    // streaming terms — at 64 KiB every multi-MiB working set streams.
    if (options.predict_l1) {
        for (std::size_t g = 0; g < shares.size(); ++g) {
            const auto stream = streaming_misses(
                shares[g].rows, shares[g].nnz, line_bytes,
                static_cast<std::uint32_t>(ci),
                static_cast<std::uint32_t>(rp));
            const std::uint64_t ws_seg =
                (8 + ci) * static_cast<std::uint64_t>(shares[g].nnz) +
                (8 + rp) * static_cast<std::uint64_t>(shares[g].rows) +
                x_bytes;
            const double x_misses =
                static_cast<double>(cntL1[g]->total_misses(capL1[g])) * scale;
            result.l1_x_misses += x_misses;
            result.l1_misses += x_misses;
            if (ws_seg > machine.l1.size_bytes *
                             static_cast<std::uint64_t>(
                                 machine.cores_per_numa))
                result.l1_misses += static_cast<double>(stream.total());
        }
    }

    const double total_unpart = result.configs.front().l2_misses;
    result.x_traffic_fraction =
        total_unpart > 0.0 ? result.configs.front().l2_x_misses / total_unpart
                           : 0.0;
    result.shards = std::move(shard_stats);
    for (const auto& st : result.shards) result.sampled_refs += st.sampled_refs;
    result.jobs = std::max<std::int64_t>(1, std::min(jobs, segments));
    result.seconds = timer.seconds();
    return result;
}

ModelResult run_method_b(const AnyCsrView& m, const ModelOptions& options) {
    return m.visit(
        [&](const auto& v) { return run_method_b_impl(v, options); });
}

}  // namespace spmvcache
