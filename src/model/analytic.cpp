#include "model/analytic.hpp"

#include "util/error.hpp"

namespace spmvcache {

StreamingMisses streaming_misses(std::int64_t rows, std::int64_t nnz,
                                 std::uint64_t line_bytes) {
    SPMV_EXPECTS(rows >= 0 && nnz >= 0);
    SPMV_EXPECTS(line_bytes >= 8);
    const auto m = static_cast<std::uint64_t>(rows);
    const auto k = static_cast<std::uint64_t>(nnz);
    auto ceil_div = [line_bytes](std::uint64_t bytes) {
        return (bytes + line_bytes - 1) / line_bytes;
    };
    StreamingMisses s;
    s.values = ceil_div(8 * k);
    s.colidx = ceil_div(4 * k);
    s.rowptr = ceil_div(8 * (m + 1));
    s.y = ceil_div(8 * m);
    return s;
}

double scaling_factor_partitioned(std::int64_t rows, std::int64_t nnz) {
    SPMV_EXPECTS(rows >= 0 && nnz >= 1);
    return (16.0 * static_cast<double>(rows) / static_cast<double>(nnz) +
            8.0) /
           8.0;
}

double scaling_factor_unpartitioned(std::int64_t rows, std::int64_t nnz) {
    SPMV_EXPECTS(rows >= 0 && nnz >= 1);
    return (16.0 * static_cast<double>(rows) / static_cast<double>(nnz) +
            20.0) /
           8.0;
}

}  // namespace spmvcache
