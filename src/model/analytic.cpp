#include "model/analytic.hpp"

#include "util/checked.hpp"
#include "util/error.hpp"

namespace spmvcache {

StreamingMisses streaming_misses(std::int64_t rows, std::int64_t nnz,
                                 std::uint64_t line_bytes,
                                 std::uint32_t colidx_bytes,
                                 std::uint32_t rowptr_bytes) {
    SPMV_EXPECTS(rows >= 0 && nnz >= 0);
    SPMV_EXPECTS(line_bytes >= 8);
    SPMV_EXPECTS(colidx_bytes == 4 || colidx_bytes == 8);
    SPMV_EXPECTS(rowptr_bytes == 4 || rowptr_bytes == 8);
    const auto m = static_cast<std::uint64_t>(rows);
    const auto k = static_cast<std::uint64_t>(nnz);
    // ceil(bytes / line) with both the product and the rounding addend
    // overflow-checked: the streaming terms are added to every method's
    // miss totals, so one wrapped byte count poisons all predictions.
    auto lines_for = [line_bytes](std::uint64_t elems,
                                  std::uint64_t elem_bytes) {
        std::uint64_t bytes = 0, rounded = 0;
        SPMV_EXPECT(checked_mul(elems, elem_bytes, bytes));
        SPMV_EXPECT(checked_add(bytes, line_bytes - 1, rounded));
        return rounded / line_bytes;
    };
    StreamingMisses s;
    s.values = lines_for(k, 8);
    s.colidx = lines_for(k, colidx_bytes);
    s.rowptr = lines_for(m + 1, rowptr_bytes);
    s.y = lines_for(m, 8);
    return s;
}

double scaling_factor_partitioned(std::int64_t rows, std::int64_t nnz,
                                  std::uint32_t rowptr_bytes) {
    SPMV_EXPECTS(rows >= 0 && nnz >= 1);
    SPMV_EXPECTS(rowptr_bytes == 4 || rowptr_bytes == 8);
    // checked_to_double contracts that M and K convert exactly (<= 2^53);
    // beyond that the s1 ratio would be computed from rounded operands.
    return ((8.0 + static_cast<double>(rowptr_bytes)) *
                checked_to_double(rows) / checked_to_double(nnz) +
            8.0) /
           8.0;
}

double scaling_factor_unpartitioned(std::int64_t rows, std::int64_t nnz,
                                    std::uint32_t colidx_bytes,
                                    std::uint32_t rowptr_bytes) {
    SPMV_EXPECTS(rows >= 0 && nnz >= 1);
    SPMV_EXPECTS(colidx_bytes == 4 || colidx_bytes == 8);
    SPMV_EXPECTS(rowptr_bytes == 4 || rowptr_bytes == 8);
    return ((8.0 + static_cast<double>(rowptr_bytes)) *
                checked_to_double(rows) / checked_to_double(nnz) +
            16.0 + static_cast<double>(colidx_bytes)) /
           8.0;
}

}  // namespace spmvcache
