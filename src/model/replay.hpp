// Packed-trace replay support shared by methods (A) and (B).
//
// Each model shard derives its segment's slice of the interleaved trace
// twice (warm-up + counted pass). When the segment fits its share of the
// ModelOptions::trace_buffer_bytes budget, the shard instead derives once
// into a packed buffer (trace/packed_trace.hpp) and replays that buffer
// for both passes — a linear uint64 scan feeding the engines' batched,
// prefetch-pipelined access paths. Packing is best-effort: any failure
// (budget of 0, oversized segment, unpackable reference, allocation
// failure, armed `trace.pack` fault) silently selects the streaming
// fallback, which computes bit-identical predictions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sparse/csr_view.hpp"
#include "trace/layout.hpp"
#include "trace/sample.hpp"
#include "trace/spmv_trace.hpp"

namespace spmvcache::detail {

/// Resolves ModelOptions::sample_rate into the filter every shard of the
/// run shares. R = 1 yields the exact filter; so does an armed
/// `reuse.sample` fault — sampling failure degrades to exact computation
/// (slower, never wrong), mirroring how a packing failure degrades to
/// streaming. Callers detect degradation via filter.exact().
[[nodiscard]] SampleFilter resolve_sample_filter(double sample_rate);

/// Resolves ModelOptions::trace_buffer_bytes: kTraceBufferAuto becomes
/// 1/8 of physical RAM clamped to [64 MiB, 8 GiB] (256 MiB when the host
/// cannot report its memory); any other value passes through.
[[nodiscard]] std::uint64_t resolve_trace_buffer_bytes(
    std::uint64_t requested) noexcept;

/// Packs segment `segment`'s trace iff its expected packed size fits
/// `budget_bytes` (8 bytes per reference; under sampling only ~R of the
/// `demand_refs` survive the filter, so the budget check scales
/// accordingly and larger segments stay packable). Empty optional = use
/// the streaming fallback (over budget, packing fault, allocation
/// failure, or a reference outside the packed encoding).
template <class Idx>
[[nodiscard]] std::optional<std::vector<std::uint64_t>>
pack_segment_within_budget(const BasicCsrView<Idx>& m,
                           const SpmvLayout& layout, const TraceConfig& cfg,
                           std::int64_t cores_per_numa, std::int64_t segment,
                           std::uint64_t demand_refs,
                           std::uint64_t budget_bytes,
                           const SampleFilter& filter = SampleFilter{});

extern template std::optional<std::vector<std::uint64_t>>
pack_segment_within_budget<Idx32>(const BasicCsrView<Idx32>&,
                                  const SpmvLayout&, const TraceConfig&,
                                  std::int64_t, std::int64_t, std::uint64_t,
                                  std::uint64_t, const SampleFilter&);
extern template std::optional<std::vector<std::uint64_t>>
pack_segment_within_budget<Idx64>(const BasicCsrView<Idx64>&,
                                  const SpmvLayout&, const TraceConfig&,
                                  std::int64_t, std::int64_t, std::uint64_t,
                                  std::uint64_t, const SampleFilter&);

// Owning-matrix convenience (deduction cannot see through the implicit
// matrix -> view conversion).
template <class Idx>
[[nodiscard]] std::optional<std::vector<std::uint64_t>>
pack_segment_within_budget(const BasicCsrMatrix<Idx>& m,
                           const SpmvLayout& layout, const TraceConfig& cfg,
                           std::int64_t cores_per_numa, std::int64_t segment,
                           std::uint64_t demand_refs,
                           std::uint64_t budget_bytes,
                           const SampleFilter& filter = SampleFilter{}) {
    return pack_segment_within_budget(BasicCsrView<Idx>(m), layout, cfg,
                                      cores_per_numa, segment, demand_refs,
                                      budget_bytes, filter);
}

}  // namespace spmvcache::detail
