#include "model/replay.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <algorithm>

#include "model/options.hpp"
#include "trace/packed_trace.hpp"
#include "util/fault.hpp"

namespace spmvcache::detail {

namespace {
constexpr std::uint64_t kMiB = std::uint64_t{1} << 20;
constexpr std::uint64_t kAutoFallback = 256 * kMiB;
constexpr std::uint64_t kAutoMin = 64 * kMiB;
constexpr std::uint64_t kAutoMax = std::uint64_t{8} << 30;
}  // namespace

std::uint64_t resolve_trace_buffer_bytes(std::uint64_t requested) noexcept {
    if (requested != kTraceBufferAuto) return requested;
    std::uint64_t physical = 0;
#if defined(_SC_PHYS_PAGES) && defined(_SC_PAGE_SIZE)
    const long pages = sysconf(_SC_PHYS_PAGES);
    const long page_bytes = sysconf(_SC_PAGE_SIZE);
    if (pages > 0 && page_bytes > 0)
        physical = static_cast<std::uint64_t>(pages) *
                   static_cast<std::uint64_t>(page_bytes);
#endif
    if (physical == 0) return kAutoFallback;
    return std::min(kAutoMax, std::max(kAutoMin, physical / 8));
}

template <class Idx>
std::optional<std::vector<std::uint64_t>> pack_segment_within_budget(
    const BasicCsrView<Idx>& m, const SpmvLayout& layout,
    const TraceConfig& cfg, std::int64_t cores_per_numa, std::int64_t segment,
    std::uint64_t demand_refs, std::uint64_t budget_bytes,
    const SampleFilter& filter) {
    // Expected packed words: all demand refs when exact, ~R of them (with
    // headroom for hash-subset variance) when sampling.
    const std::uint64_t expected_words =
        filter.exact()
            ? demand_refs
            : static_cast<std::uint64_t>(
                  static_cast<double>(demand_refs) * filter.rate() * 1.25) +
                  1024;
    if (expected_words > budget_bytes / sizeof(std::uint64_t))
        return std::nullopt;
    Result<std::vector<std::uint64_t>> packed = try_pack_spmv_trace_segment(
        m, layout, cfg, cores_per_numa, segment, filter);
    if (!packed.ok()) return std::nullopt;
    return std::move(packed).value();
}

template std::optional<std::vector<std::uint64_t>>
pack_segment_within_budget<Idx32>(const BasicCsrView<Idx32>&,
                                  const SpmvLayout&, const TraceConfig&,
                                  std::int64_t, std::int64_t, std::uint64_t,
                                  std::uint64_t, const SampleFilter&);
template std::optional<std::vector<std::uint64_t>>
pack_segment_within_budget<Idx64>(const BasicCsrView<Idx64>&,
                                  const SpmvLayout&, const TraceConfig&,
                                  std::int64_t, std::int64_t, std::uint64_t,
                                  std::uint64_t, const SampleFilter&);

SampleFilter resolve_sample_filter(double sample_rate) {
    if (sample_rate >= 1.0) return SampleFilter{};
    // Armed `reuse.sample` degrades the run to exact computation — the
    // same never-wrong-only-slower contract as the packing fallback.
    if (fault::should_fail("reuse.sample")) return SampleFilter{};
    return SampleFilter(sample_rate);
}

}  // namespace spmvcache::detail
