// Shared option and result types for the cache-miss model (methods A & B).
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/a64fx.hpp"
#include "sparse/index_width.hpp"
#include "sparse/partition.hpp"
#include "trace/memref.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// Sentinel for ModelOptions::trace_buffer_bytes: resolve the packed-trace
/// budget from physical RAM at run time.
inline constexpr std::uint64_t kTraceBufferAuto = ~std::uint64_t{0};

/// Options for a model run.
struct ModelOptions {
    /// Machine geometry consulted for line size, cache capacities and the
    /// thread -> L2 segment mapping; the model never simulates it.
    A64fxConfig machine{};
    std::int64_t threads = 1;
    /// Data-to-sector assignment analysed for the partitioned entries.
    SectorPolicy policy = SectorPolicy::IsolateMatrix;
    /// Sector-1 L2 way counts to price (0 = no partitioning is always
    /// included in the result in addition to these).
    std::vector<std::uint32_t> l2_way_options = {2, 3, 4, 5, 6, 7};
    /// Also predict L1 misses (unpartitioned L1 model, §4.5.4).
    bool predict_l1 = true;
    PartitionPolicy partition = PartitionPolicy::BalancedRows;
    /// Interleave granularity in nonzeros (see TraceConfig::quantum).
    std::int64_t quantum = 1;
    /// Engine group capacity when a Kim engine is used (method variants).
    std::uint64_t kim_group_capacity = 512;
    /// Host worker threads for the model's stack passes. The model is
    /// sharded by L2 segment (each shard re-derives only its segment's
    /// slice of the interleaved trace), so up to one worker per active
    /// segment is useful. 0 = one worker per hardware thread; 1 = serial.
    /// Predictions are bit-identical for every value — see DESIGN.md
    /// "Sharded host-parallel model execution".
    std::int64_t jobs = 0;
    /// Packed-trace replay budget in bytes, shared by the shards that can
    /// run concurrently: a shard packs its segment trace (8 bytes per
    /// reference, derived once, replayed for both passes) when it fits
    /// budget / min(jobs, segments), and falls back to streaming
    /// re-derivation otherwise — so arbitrarily large matrices still run.
    /// kTraceBufferAuto (default) resolves to 1/8 of physical RAM clamped
    /// to [64 MiB, 8 GiB]; 0 forces streaming everywhere. Predictions are
    /// bit-identical either way (differential-tested); the knob trades
    /// memory for trace-derivation throughput only. CLI: --trace-buffer.
    std::uint64_t trace_buffer_bytes = kTraceBufferAuto;
    /// SHARDS spatial-sampling rate R in (0, 1]. 1 (default) is the exact
    /// model — bit-identical to every pre-sampling prediction. R < 1
    /// processes only references whose line hashes below R·2⁶⁴
    /// (trace/sample.hpp) and scales distances and miss totals by 1/R, an
    /// unbiased estimate typically within a few percent at R = 0.01 while
    /// the stack passes do ~R times the work. CLI: --approx[=R]. An armed
    /// `reuse.sample` fault degrades the run to exact computation (never
    /// to wrong numbers); ModelResult::sampled reports what actually ran.
    double sample_rate = 1.0;
    /// Per-run wall-clock budget in seconds; <= 0 disables it. Enforced by
    /// core/model_runner.hpp's run_model (the CLI --timeout flag and every
    /// serve request share that one mechanism); the raw run_method_a/b
    /// entry points ignore it. On expiry the run is abandoned on a
    /// detached thread and TimeoutError returned — see core/deadline.hpp.
    double timeout_seconds = 0.0;
    /// Index-array element sizes the model *accounts* traffic at, in
    /// bytes. 0 (default) follows the physical storage width of the matrix
    /// being modelled (4/4 for W32, 8/8 for W64); a non-zero value pins
    /// the accounting regardless of storage — the paper's numbers use
    /// colidx=4, rowptr=8, and the width-differential tests pin one
    /// accounting for both widths so predictions must agree bit for bit.
    /// Valid non-zero values: 4 or 8.
    std::uint32_t accounting_colidx_bytes = 0;
    std::uint32_t accounting_rowptr_bytes = 0;

    /// The colidx element size to account for a matrix stored at `width`.
    [[nodiscard]] std::uint32_t colidx_bytes_for(IndexWidth width) const noexcept {
        return accounting_colidx_bytes != 0 ? accounting_colidx_bytes
                                            : colidx_width_bytes(width);
    }
    /// The rowptr element size to account for a matrix stored at `width`.
    [[nodiscard]] std::uint32_t rowptr_bytes_for(IndexWidth width) const noexcept {
        return accounting_rowptr_bytes != 0 ? accounting_rowptr_bytes
                                            : rowptr_width_bytes(width);
    }
};

/// Predicted misses for one sector-cache configuration.
struct ConfigPrediction {
    /// Sector-1 L2 ways; 0 means the sector cache is disabled.
    std::uint32_t l2_sector_ways = 0;
    /// Predicted L2 misses (memory fills) for one SpMV iteration after
    /// warm-up, summed over all active L2 segments.
    double l2_misses = 0.0;
    /// Contribution of x-vector references to l2_misses.
    double l2_x_misses = 0.0;
};

/// Execution record of one host-side model shard (= one L2 segment).
struct ShardStats {
    std::int64_t segment = 0;      ///< L2 segment index
    std::int64_t threads = 0;      ///< simulated threads mapped to it
    /// Demand references replayed per counted SpMV iteration (the shard's
    /// slice of the derived trace; shards sum to spmv_trace_length).
    std::uint64_t references = 0;
    double seconds = 0.0;          ///< wall-clock of this shard's stack pass
    /// True when the shard replayed a packed trace buffer; false when it
    /// streamed (budget exceeded, --trace-buffer 0, or packing failed).
    bool packed_replay = false;
    /// References that survived the sampling filter and reached the
    /// engines (== references when the run was exact).
    std::uint64_t sampled_refs = 0;
};

/// Result of one model run (either method).
struct ModelResult {
    std::vector<ConfigPrediction> configs;  ///< entry 0 is "no partitioning"
    /// Predicted L1 misses per iteration, unpartitioned L1 (0 if disabled).
    double l1_misses = 0.0;
    double l1_x_misses = 0.0;
    /// Fraction of predicted unpartitioned L2 miss *traffic* due to x
    /// (the §4.5.5 hard-case criterion: >= 0.5).
    double x_traffic_fraction = 0.0;
    /// Wall-clock seconds spent computing the model.
    double seconds = 0.0;
    /// Per-shard timing and reference counts, one entry per L2 segment.
    std::vector<ShardStats> shards;
    /// Host workers the run actually used (after resolving jobs = 0).
    std::int64_t jobs = 1;
    /// True when predictions are SHARDS estimates (sample_rate < 1 *and*
    /// sampling was not degraded to exact by an armed `reuse.sample`
    /// fault). Reporters surface this so approximate numbers are never
    /// silently presented as exact.
    bool sampled = false;
    /// The rate the run actually used (1.0 when exact or degraded).
    double sample_rate = 1.0;
    /// Demand references that reached the engines, summed over shards
    /// (== total references when exact).
    std::uint64_t sampled_refs = 0;

    /// Typed lookup: the prediction for `l2_sector_ways` (0 = disabled),
    /// or ValidationError when that configuration was not priced. The
    /// non-throwing form batch isolation can classify.
    [[nodiscard]] Result<ConfigPrediction> find(
        std::uint32_t l2_sector_ways) const;

    /// Reference-returning lookup for callers that know the configuration
    /// was priced. Throws StatusError (code ValidationError) otherwise, so
    /// stage-boundary catch blocks classify it as an input error rather
    /// than a crash.
    [[nodiscard]] const ConfigPrediction& at(std::uint32_t l2_sector_ways) const;

private:
    /// Shared lookup loop behind find/at (nullptr when not priced).
    [[nodiscard]] const ConfigPrediction* find_ptr(
        std::uint32_t l2_sector_ways) const noexcept;
};

}  // namespace spmvcache
