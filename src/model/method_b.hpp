// Method (B): single-pass approximation from the x-vector access pattern
// (§3.2.2).
//
// Only the references to x — derived directly from colidx — are stack-
// processed. The interleaved references to the other data structures are
// accounted for analytically: their effect on x's reuse distances is a
// multiplicative scaling factor (s1 with partitioning, s2 without), and
// their own misses are the §3.1 streaming terms gated by the working-set
// classification. One pass prices the unpartitioned case and every
// requested way split simultaneously — the method's selling point.
#pragma once

#include "model/options.hpp"
#include "sparse/any_csr.hpp"
#include "sparse/csr_view.hpp"

namespace spmvcache {

/// Runs method (B); same result shape as method (A). Accepts either
/// physical index width; the analytic byte accounting (streaming terms,
/// s1/s2, working-set sizes) follows the storage width unless ModelOptions
/// pins it (accounting_*_bytes).
[[nodiscard]] ModelResult run_method_b(const AnyCsrView& m,
                                       const ModelOptions& options);

}  // namespace spmvcache
