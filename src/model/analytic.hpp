// Analytic (streaming) miss terms of §3.1: the matrix data is used once
// per SpMV, so with a working set beyond cache capacity, a, colidx, rowptr
// and y incur exactly one miss per cache line:
//   a:      ceil(8K/L)        colidx: ceil(ci*K/L)
//   rowptr: ceil(rp*(M+1)/L)  y:      ceil(8M/L)
// for an M-by-N matrix with K nonzeros and line size L, where ci/rp are
// the index arrays' element sizes. The paper's accounting is ci=4, rp=8
// (the defaults); the W32 storage pipeline streams ci=4, rp=4 and the W64
// fallback ci=8, rp=8.
#pragma once

#include <cstdint>

namespace spmvcache {

/// Streaming (one-miss-per-line) counts for the four regular arrays.
struct StreamingMisses {
    std::uint64_t values = 0;
    std::uint64_t colidx = 0;
    std::uint64_t rowptr = 0;
    std::uint64_t y = 0;

    [[nodiscard]] std::uint64_t matrix_data() const noexcept {
        return values + colidx;
    }
    [[nodiscard]] std::uint64_t total() const noexcept {
        return values + colidx + rowptr + y;
    }
};

/// Computes the §3.1 streaming terms. `colidx_bytes`/`rowptr_bytes` are
/// the index arrays' element sizes (defaults = the paper's accounting).
/// Pre: line_bytes >= 8.
[[nodiscard]] StreamingMisses streaming_misses(
    std::int64_t rows, std::int64_t nnz, std::uint64_t line_bytes,
    std::uint32_t colidx_bytes = 4, std::uint32_t rowptr_bytes = 8);

/// Method (B) scaling factor with partitioning (x shares its partition
/// with rowptr and y): s1 = ((8+rp)*M/K + 8) / 8, which is the paper's
/// s1 = (16*M/K + 8) / 8 at the default rp=8 (§3.2.2). The per-row term
/// counts 8 bytes of y plus rp bytes of rowptr; the per-nonzero term is
/// the 8 bytes of x the partition interleaves.
[[nodiscard]] double scaling_factor_partitioned(std::int64_t rows,
                                                std::int64_t nnz,
                                                std::uint32_t rowptr_bytes = 8);

/// Method (B) scaling factor without partitioning (a and colidx references
/// interleave as well): s2 = ((8+rp)*M/K + 16 + ci) / 8, the paper's
/// s2 = (16*M/K + 20) / 8 at ci=4, rp=8 (§3.2.2). The per-nonzero term
/// adds the 8 bytes of a and ci bytes of colidx to the 8 bytes of x.
[[nodiscard]] double scaling_factor_unpartitioned(
    std::int64_t rows, std::int64_t nnz, std::uint32_t colidx_bytes = 4,
    std::uint32_t rowptr_bytes = 8);

}  // namespace spmvcache
