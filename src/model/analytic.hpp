// Analytic (streaming) miss terms of §3.1: the matrix data is used once
// per SpMV, so with a working set beyond cache capacity, a, colidx, rowptr
// and y incur exactly one miss per cache line:
//   a:      ceil(8K/L)        colidx: ceil(4K/L)
//   rowptr: ceil(8(M+1)/L)    y:      ceil(8M/L)
// for an M-by-N matrix with K nonzeros and line size L.
#pragma once

#include <cstdint>

namespace spmvcache {

/// Streaming (one-miss-per-line) counts for the four regular arrays.
struct StreamingMisses {
    std::uint64_t values = 0;
    std::uint64_t colidx = 0;
    std::uint64_t rowptr = 0;
    std::uint64_t y = 0;

    [[nodiscard]] std::uint64_t matrix_data() const noexcept {
        return values + colidx;
    }
    [[nodiscard]] std::uint64_t total() const noexcept {
        return values + colidx + rowptr + y;
    }
};

/// Computes the §3.1 streaming terms. Pre: line_bytes >= 8.
[[nodiscard]] StreamingMisses streaming_misses(std::int64_t rows,
                                               std::int64_t nnz,
                                               std::uint64_t line_bytes);

/// Method (B) scaling factor with partitioning (x shares its partition
/// with rowptr and y): s1 = (16*M/K + 8) / 8  (§3.2.2).
[[nodiscard]] double scaling_factor_partitioned(std::int64_t rows,
                                                std::int64_t nnz);

/// Method (B) scaling factor without partitioning (a and colidx references
/// interleave as well): s2 = (16*M/K + 20) / 8  (§3.2.2).
[[nodiscard]] double scaling_factor_unpartitioned(std::int64_t rows,
                                                  std::int64_t nnz);

}  // namespace spmvcache
