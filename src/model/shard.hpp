// Host-side shard scheduling shared by methods (A) and (B).
//
// The model is sharded by L2 segment: every per-segment stack engine (and
// every per-core L1 engine, since cores do not move between segments)
// consumes a disjoint, order-preserved slice of the interleaved trace
// (generate_spmv_trace_segment), so shards are fully independent and can
// run concurrently on a ThreadPool without changing any prediction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "sync/thread_pool.hpp"

namespace spmvcache::detail {

/// Resolves ModelOptions::jobs: 0 means one worker per hardware thread.
[[nodiscard]] inline std::int64_t resolve_model_jobs(std::int64_t jobs) {
    return jobs >= 1 ? jobs
                     : static_cast<std::int64_t>(default_host_jobs());
}

/// Runs fn(shard) for every shard in [0, shards), concurrently on up to
/// `jobs` pool workers (serial when either is 1 — no pool, no threads).
/// Exceptions from fn propagate to the caller in both modes.
inline void for_each_shard(std::int64_t shards, std::int64_t jobs,
                           const std::function<void(std::int64_t)>& fn) {
    if (jobs <= 1 || shards <= 1) {
        for (std::int64_t s = 0; s < shards; ++s) fn(s);
        return;
    }
    ThreadPool pool(static_cast<std::size_t>(std::min(jobs, shards)));
    pool.parallel_for(static_cast<std::size_t>(shards),
                      [&fn](std::size_t s) {
                          fn(static_cast<std::int64_t>(s));
                      });
}

}  // namespace spmvcache::detail
