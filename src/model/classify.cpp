#include "model/classify.hpp"

#include "util/checked.hpp"

namespace spmvcache {

std::string to_string(MatrixClass c) {
    switch (c) {
        case MatrixClass::Class1:
            return "(1)";
        case MatrixClass::Class2:
            return "(2)";
        case MatrixClass::Class3a:
            return "(3a)";
        case MatrixClass::Class3b:
            return "(3b)";
    }
    return "?";
}

MatrixClass classify(const MatrixStats& stats, std::uint64_t cache_bytes,
                     std::uint64_t sector0_bytes) {
    // The class boundaries are byte comparisons; a wrapped byte count
    // would misclassify silently (class (3b) looking like (1)), so every
    // product and sum is overflow-checked.
    std::uint64_t x_bytes = 0, y_bytes = 0, rowptr_bytes = 0;
    SPMV_EXPECT(checked_mul<std::uint64_t>(
        static_cast<std::uint64_t>(stats.cols), 8, x_bytes));
    SPMV_EXPECT(checked_mul<std::uint64_t>(
        static_cast<std::uint64_t>(stats.rows), 8, y_bytes));
    SPMV_EXPECT(checked_mul<std::uint64_t>(
        static_cast<std::uint64_t>(stats.rows) + 1,
        rowptr_width_bytes(stats.index_width), rowptr_bytes));

    if (stats.working_set_bytes <= cache_bytes) return MatrixClass::Class1;
    std::uint64_t vectors_bytes = 0;
    SPMV_EXPECT(checked_add(x_bytes, y_bytes, vectors_bytes));
    SPMV_EXPECT(checked_add(vectors_bytes, rowptr_bytes, vectors_bytes));
    if (vectors_bytes <= sector0_bytes) return MatrixClass::Class2;
    if (x_bytes <= sector0_bytes) return MatrixClass::Class3a;
    return MatrixClass::Class3b;
}

MatrixClass classify(const AnyCsrView& m, std::uint64_t cache_bytes,
                     std::uint64_t sector0_bytes) {
    return classify(compute_stats(m), cache_bytes, sector0_bytes);
}

}  // namespace spmvcache
