#include "model/classify.hpp"

namespace spmvcache {

std::string to_string(MatrixClass c) {
    switch (c) {
        case MatrixClass::Class1:
            return "(1)";
        case MatrixClass::Class2:
            return "(2)";
        case MatrixClass::Class3a:
            return "(3a)";
        case MatrixClass::Class3b:
            return "(3b)";
    }
    return "?";
}

MatrixClass classify(const MatrixStats& stats, std::uint64_t cache_bytes,
                     std::uint64_t sector0_bytes) {
    const std::uint64_t x_bytes = static_cast<std::uint64_t>(stats.cols) * 8;
    const std::uint64_t y_bytes = static_cast<std::uint64_t>(stats.rows) * 8;
    const std::uint64_t rowptr_bytes =
        (static_cast<std::uint64_t>(stats.rows) + 1) * 8;

    if (stats.working_set_bytes <= cache_bytes) return MatrixClass::Class1;
    if (x_bytes + y_bytes + rowptr_bytes <= sector0_bytes)
        return MatrixClass::Class2;
    if (x_bytes <= sector0_bytes) return MatrixClass::Class3a;
    return MatrixClass::Class3b;
}

MatrixClass classify(const CsrMatrix& m, std::uint64_t cache_bytes,
                     std::uint64_t sector0_bytes) {
    return classify(compute_stats(m), cache_bytes, sector0_bytes);
}

}  // namespace spmvcache
