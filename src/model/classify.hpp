// Matrix classification by working-set size (§3.1 of the paper):
//  (1)  matrix and vectors together fit into cache;
//  (2)  they do not, but x, y and rowptr fit into one cache partition;
//  (3a) x, y, rowptr together do not fit, but x alone does;
//  (3b) even x alone does not fit into the partition.
// Class (2) is where the sector cache helps most (Fig. 4); class (1) sees
// no capacity misses, class (3) only partial benefit.
#pragma once

#include <cstdint>
#include <string>

#include "sparse/matrix_stats.hpp"

namespace spmvcache {

enum class MatrixClass { Class1, Class2, Class3a, Class3b };

/// Short label as used in the paper's figures: "(1)", "(2)", "(3a)", "(3b)".
[[nodiscard]] std::string to_string(MatrixClass c);

/// Classifies by byte sizes: `cache_bytes` is the capacity of the cache
/// level of interest (one 8 MiB L2 segment on the A64FX), `sector0_bytes`
/// the share available to the reusable data under the sector configuration
/// (the full cache when partitioning is off).
[[nodiscard]] MatrixClass classify(const MatrixStats& stats,
                                   std::uint64_t cache_bytes,
                                   std::uint64_t sector0_bytes);

/// Convenience overload computing the stats internally (either width).
[[nodiscard]] MatrixClass classify(const AnyCsrView& m,
                                   std::uint64_t cache_bytes,
                                   std::uint64_t sector0_bytes);

}  // namespace spmvcache
