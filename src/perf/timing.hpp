// Maps simulator event counts to estimated runtime, Gflop/s and memory
// bandwidth — the quantities Table 1 and Figs. 3-5 report.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "perf/machine.hpp"

namespace spmvcache {

/// Estimated execution profile of one SpMV iteration.
struct TimingBreakdown {
    double seconds = 0.0;
    double gflops = 0.0;
    /// Memory bandwidth utilisation per the paper's §4.4 PMU formula.
    double bandwidth_gbs = 0.0;
    // Diagnostics: the competing bounds, in cycles.
    double bandwidth_cycles = 0.0;  ///< max over segments of bytes/BW
    double core_cycles = 0.0;       ///< max over cores of the core term
    double total_cycles = 0.0;
};

/// Estimates the time of the SpMV iteration whose events are currently in
/// `sim`'s counters. `nnz_per_thread` gives each logical thread's share of
/// the 2*nnz flops (threads map 1:1 to cores).
/// Pre: nnz_per_thread.size() <= cores of the simulated machine.
[[nodiscard]] TimingBreakdown estimate_timing(
    const MemoryHierarchy& sim,
    const std::vector<std::int64_t>& nnz_per_thread,
    const TimingParameters& params = {});

}  // namespace spmvcache
