#include "perf/timing.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmvcache {

TimingBreakdown estimate_timing(const MemoryHierarchy& sim,
                                const std::vector<std::int64_t>& nnz_per_thread,
                                const TimingParameters& params) {
    const auto& machine = sim.config();
    SPMV_EXPECTS(nnz_per_thread.size() <=
                 static_cast<std::size_t>(machine.cores));
    const std::uint64_t line_bytes = machine.l2.line_bytes;

    TimingBreakdown breakdown;
    std::int64_t total_nnz = 0;
    std::uint64_t total_bytes = 0;

    double machine_cycles = 0.0;
    for (std::int64_t g = 0; g < sim.segments(); ++g) {
        // Bandwidth bound: every byte the segment moves to or from memory.
        const std::uint64_t seg_bytes =
            sim.l2_segment(g).memory_bytes(line_bytes);
        total_bytes += seg_bytes;
        const double bw_cycles = static_cast<double>(seg_bytes) /
                                 params.segment_bandwidth_bytes_per_cycle;
        breakdown.bandwidth_cycles =
            std::max(breakdown.bandwidth_cycles, bw_cycles);

        // Execution bound: the slowest core of the segment (load imbalance
        // surfaces here — a barrier follows each parallel SpMV).
        double worst_core = 0.0;
        const std::int64_t core_begin = g * machine.cores_per_numa;
        const std::int64_t core_end =
            std::min<std::int64_t>(core_begin + machine.cores_per_numa,
                                   machine.cores);
        for (std::int64_t c = core_begin; c < core_end; ++c) {
            const auto& cc = sim.core_counters(static_cast<std::uint32_t>(c));
            const std::int64_t nnz_c =
                static_cast<std::size_t>(c) < nnz_per_thread.size()
                    ? nnz_per_thread[static_cast<std::size_t>(c)]
                    : 0;
            total_nnz += nnz_c;
            const double cycles =
                static_cast<double>(nnz_c) * params.cycles_per_nnz +
                static_cast<double>(cc.l1_refills) *
                    params.cycles_per_l1_refill +
                static_cast<double>(cc.l2_demand_fills) *
                    (params.memory_latency_cycles / params.mlp);
            worst_core = std::max(worst_core, cycles);
        }
        breakdown.core_cycles = std::max(breakdown.core_cycles, worst_core);
        machine_cycles =
            std::max(machine_cycles, std::max(bw_cycles, worst_core));
    }

    breakdown.total_cycles = machine_cycles;
    breakdown.seconds = machine_cycles / (params.clock_ghz * 1e9);
    if (breakdown.seconds > 0.0) {
        breakdown.gflops = 2.0 * static_cast<double>(total_nnz) /
                           breakdown.seconds / 1e9;
        breakdown.bandwidth_gbs =
            static_cast<double>(total_bytes) / breakdown.seconds / 1e9;
    }
    return breakdown;
}

}  // namespace spmvcache
