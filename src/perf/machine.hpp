// Timing parameters of the simulated A64FX (§4.1: 48 cores, 2.2 GHz,
// 1024 GB/s theoretical HBM2 bandwidth of which >800 GB/s is sustainable).
//
// The timing model is ECM-inspired (after Alappat et al., the paper's
// baseline study): per-core in-core time, L1<-L2 transfer time and a
// latency term for demand misses, bounded below by each segment's memory
// bandwidth. The paper's own measurements motivate the latency term: "none
// of the top 20 matrices in terms of speedup exceeds 400 GB/s... other
// factors, such as the latency of handling demand misses, are limiting
// performance" (§4.4).
#pragma once

namespace spmvcache {

/// Calibration constants for the analytic timing model.
struct TimingParameters {
    double clock_ghz = 2.2;

    /// In-core cycles per processed nonzero (SVE fma + gather overhead);
    /// caps SpMV at ~130 Gflop/s across 48 cores, matching the top of the
    /// paper's Table 1 range.
    double cycles_per_nnz = 1.6;

    /// Cycles per 256 B L1 refill from L2 (shared L2 port pressure).
    double cycles_per_l1_refill = 6.0;

    /// Load-to-use latency of an L2 demand miss served by HBM2.
    double memory_latency_cycles = 290.0;

    /// Average overlap of outstanding demand misses (memory-level
    /// parallelism): the effective latency cost per miss is
    /// memory_latency_cycles / mlp.
    double mlp = 8.0;

    /// Sustained per-segment HBM2 bandwidth in bytes per core cycle
    /// (4 segments x 117 B/cycle x 2.2 GHz ~ 1030 GB/s peak, ~80 %
    /// sustainable).
    double segment_bandwidth_bytes_per_cycle = 95.0;
};

}  // namespace spmvcache
