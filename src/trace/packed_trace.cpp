#include "trace/packed_trace.hpp"

#include <new>
#include <string>

#include "util/fault.hpp"

namespace spmvcache {

template <class Idx>
[[nodiscard]] Result<std::vector<std::uint64_t>> try_pack_spmv_trace_segment(
    const BasicCsrView<Idx>& m, const SpmvLayout& layout,
    const TraceConfig& cfg, std::int64_t cores_per_numa,
    std::int64_t segment, const SampleFilter& filter) {
    SPMV_RETURN_IF_ERROR(fault::maybe_fail("trace.pack"));

    // Demand-reference count of this segment; exact when no software
    // prefetch hints are configured, a lower-bound reserve otherwise.
    // Under sampling only ~R·expected references survive the filter; the
    // reserve is an estimate with headroom and the vector grows past it
    // if an unlucky hash subset runs dense.
    const auto lengths = spmv_segment_lengths(m, cfg, cores_per_numa);
    const std::uint64_t expected =
        lengths[static_cast<std::size_t>(segment)];
    const std::uint64_t reserve_hint =
        filter.exact()
            ? expected
            : static_cast<std::uint64_t>(
                  static_cast<double>(expected) * filter.rate() * 1.25) +
                  1024;

    std::vector<std::uint64_t> packed;
    bool unpackable = false;
    MemRef bad{};
    try {
        packed.reserve(static_cast<std::size_t>(reserve_hint));
        generate_spmv_trace_segment(
            m, layout, cfg, cores_per_numa, segment, [&](const MemRef& ref) {
                if (!filter.keep(ref.line)) return;  // SHARDS pre-filter
                if (!memref_packable(ref)) {
                    if (!unpackable) bad = ref;
                    unpackable = true;
                    return;
                }
                packed.push_back(pack_memref(ref));
            });
    } catch (const std::bad_alloc&) {
        return Error(ErrorCode::ResourceError,
                     "allocation failed packing trace segment " +
                         std::to_string(segment) + " (" +
                         std::to_string(expected) + " references)");
    }
    if (unpackable)
        return Error(ErrorCode::ValidationError,
                     "trace reference does not fit the packed encoding "
                     "(line " +
                         std::to_string(bad.line) + ", thread " +
                         std::to_string(bad.thread) + ")");
    return packed;
}

template Result<std::vector<std::uint64_t>>
try_pack_spmv_trace_segment<Idx32>(const BasicCsrView<Idx32>&,
                                   const SpmvLayout&, const TraceConfig&,
                                   std::int64_t, std::int64_t,
                                   const SampleFilter&);
template Result<std::vector<std::uint64_t>>
try_pack_spmv_trace_segment<Idx64>(const BasicCsrView<Idx64>&,
                                   const SpmvLayout&, const TraceConfig&,
                                   std::int64_t, std::int64_t,
                                   const SampleFilter&);

}  // namespace spmvcache
