// SHARDS fixed-rate spatial sampling filter (Waldspurger et al., FAST'15).
//
// A reference to line L is kept iff hash(L) < R·2⁶⁴ for a fixed sampling
// rate R in (0, 1]. Because the filter is *spatial* (per line, not per
// reference), every access to a kept line survives, so the sampled trace
// is the full trace restricted to a uniformly random R-subset of the
// address space. Two scaling identities then recover full-trace
// quantities in expectation:
//
//   * distances — a reuse interval covering D distinct lines of the full
//     trace covers ≈ R·D kept lines, so the estimate is d_sampled / R;
//   * counts — each kept reference stands for 1/R references of the full
//     trace, so histogram/counter totals are scaled by 1/R.
//
// The hash is a splitmix64-style finalizer: line numbers arrive highly
// structured (sequential within rows), and the mixer's avalanche makes
// the kept subset behave like a uniform random sample of the lines.
//
// The filter lives in trace/ (below reuse/ in the library order) because
// packed-trace derivation applies it at packing time — skipped references
// never leave the buffer — while reuse/sampled.hpp applies the *same*
// filter inside the SampledEngine adapter, so both paths agree exactly on
// which lines are kept.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace spmvcache {

/// splitmix64 finalizer over the line number — the SHARDS spatial hash.
[[nodiscard]] inline std::uint64_t sample_hash(std::uint64_t line) noexcept {
    std::uint64_t h = line + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
}

/// The fixed-rate filter plus the two scaling identities. Default
/// construction (or rate 1.0) is the exact filter: keep() is always true
/// and both scales are the identity, so exact-mode callers pay nothing.
class SampleFilter {
public:
    SampleFilter() = default;

    /// Pre: 0 < rate <= 1.
    explicit SampleFilter(double rate) : rate_(rate) {
        SPMV_EXPECTS(rate > 0.0 && rate <= 1.0);
        if (rate < 1.0) {
            inverse_ = 1.0 / rate;
            // R·2⁶⁴ without overflowing the double→uint64 cast: quantise
            // R at 2⁻⁵³ (exact for any double < 1) and shift up.
            threshold_ = static_cast<std::uint64_t>(rate * 0x1p53) << 11;
        }
    }

    /// True when the filter passes everything (R = 1).
    [[nodiscard]] bool exact() const noexcept { return rate_ >= 1.0; }
    [[nodiscard]] double rate() const noexcept { return rate_; }
    [[nodiscard]] double inverse_rate() const noexcept { return inverse_; }

    /// True when references to `line` are processed.
    [[nodiscard]] bool keep(std::uint64_t line) const noexcept {
        return exact() || sample_hash(line) < threshold_;
    }

    /// d_sampled → d_sampled / R (the unbiased full-trace estimate). An
    /// all-ones distance (reuse/engine.hpp's kInfiniteDistance — a cold
    /// miss) passes through unchanged.
    [[nodiscard]] std::uint64_t scale_distance(
        std::uint64_t distance) const noexcept {
        if (exact() || distance == ~std::uint64_t{0}) return distance;
        return static_cast<std::uint64_t>(
            std::llround(static_cast<double>(distance) * inverse_));
    }

    /// count → count / R (each kept reference stands for 1/R).
    [[nodiscard]] double scale_count(double count) const noexcept {
        return count * inverse_;
    }

private:
    double rate_ = 1.0;
    double inverse_ = 1.0;
    std::uint64_t threshold_ = ~std::uint64_t{0};
};

}  // namespace spmvcache
