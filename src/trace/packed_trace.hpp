// Packed trace: one uint64 per memory reference.
//
// The model replays every segment trace twice (warm-up + counted pass).
// Deriving it through the per-MemRef callback twice costs two passes of
// cursor machinery and callback dispatch per reference; packing the
// derivation once into a flat buffer of bit-packed words turns the second
// (and every further) pass into a linear scan the reuse engines can consume
// in batches. The encoding is lossless for every trace this repo derives:
//
//   bits [0, 48)   cache-line number   (48 bits — 2^48 lines of 256 B
//                                       is 64 PiB of addressed data)
//   bits [48, 59)  simulated thread    (11 bits, up to 2048 threads)
//   bits [59, 62)  DataObject          (3 bits, 5 objects)
//   bit  62        is_write
//   bit  63        is_prefetch
//
// A reference outside those ranges (or an armed `trace.pack` fault, or an
// allocation failure at packing time) makes try_pack_spmv_trace_segment
// return a typed error, and the model falls back to streaming
// re-derivation — packing is a throughput optimisation, never a
// correctness dependency.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr_view.hpp"
#include "trace/layout.hpp"
#include "trace/memref.hpp"
#include "trace/sample.hpp"
#include "trace/spmv_trace.hpp"
#include "util/status.hpp"

namespace spmvcache {

inline constexpr int kPackedLineBits = 48;
inline constexpr int kPackedThreadBits = 11;
inline constexpr std::uint64_t kPackedLineMask =
    (std::uint64_t{1} << kPackedLineBits) - 1;
inline constexpr std::uint64_t kPackedThreadMask =
    (std::uint64_t{1} << kPackedThreadBits) - 1;
inline constexpr int kPackedObjectShift = kPackedLineBits + kPackedThreadBits;
inline constexpr int kPackedWriteShift = 62;
inline constexpr int kPackedPrefetchShift = 63;

/// True iff `ref` fits the packed encoding (line < 2^48, thread < 2^11).
[[nodiscard]] constexpr bool memref_packable(const MemRef& ref) noexcept {
    return ref.line <= kPackedLineMask && ref.thread <= kPackedThreadMask;
}

/// Packs one reference. Pre: memref_packable(ref).
[[nodiscard]] constexpr std::uint64_t pack_memref(const MemRef& ref) noexcept {
    return ref.line |
           (static_cast<std::uint64_t>(ref.thread) << kPackedLineBits) |
           (static_cast<std::uint64_t>(ref.object) << kPackedObjectShift) |
           (static_cast<std::uint64_t>(ref.is_write) << kPackedWriteShift) |
           (static_cast<std::uint64_t>(ref.is_prefetch)
            << kPackedPrefetchShift);
}

[[nodiscard]] constexpr std::uint64_t packed_line(std::uint64_t word) noexcept {
    return word & kPackedLineMask;
}
[[nodiscard]] constexpr std::uint32_t packed_thread(
    std::uint64_t word) noexcept {
    return static_cast<std::uint32_t>((word >> kPackedLineBits) &
                                      kPackedThreadMask);
}
[[nodiscard]] constexpr DataObject packed_object(std::uint64_t word) noexcept {
    return static_cast<DataObject>((word >> kPackedObjectShift) & 0x7u);
}
[[nodiscard]] constexpr bool packed_is_write(std::uint64_t word) noexcept {
    return ((word >> kPackedWriteShift) & 1u) != 0;
}
[[nodiscard]] constexpr bool packed_is_prefetch(std::uint64_t word) noexcept {
    return ((word >> kPackedPrefetchShift) & 1u) != 0;
}

/// Unpacks one word (exact inverse of pack_memref for packable refs).
[[nodiscard]] constexpr MemRef unpack_memref(std::uint64_t word) noexcept {
    return MemRef{packed_line(word), packed_thread(word), packed_object(word),
                  packed_is_write(word), packed_is_prefetch(word)};
}

/// Derives segment `segment`'s filtered trace once and packs it, reserving
/// from spmv_segment_lengths up front. `filter` applies SHARDS spatial
/// sampling at packing time: references whose line the filter rejects are
/// dropped before they ever enter the buffer, so a sampled replay scans
/// ~R·refs words instead of refs (the default exact filter keeps all).
/// Typed errors instead of values when a reference does not fit the
/// encoding (ValidationError), the packing allocation fails
/// (ResourceError), or the `trace.pack` fault point is armed — callers
/// are expected to fall back to streaming re-derivation.
template <class Idx>
[[nodiscard]] Result<std::vector<std::uint64_t>> try_pack_spmv_trace_segment(
    const BasicCsrView<Idx>& m, const SpmvLayout& layout,
    const TraceConfig& cfg, std::int64_t cores_per_numa,
    std::int64_t segment, const SampleFilter& filter = SampleFilter{});

extern template Result<std::vector<std::uint64_t>>
try_pack_spmv_trace_segment<Idx32>(const BasicCsrView<Idx32>&,
                                   const SpmvLayout&, const TraceConfig&,
                                   std::int64_t, std::int64_t,
                                   const SampleFilter&);
extern template Result<std::vector<std::uint64_t>>
try_pack_spmv_trace_segment<Idx64>(const BasicCsrView<Idx64>&,
                                   const SpmvLayout&, const TraceConfig&,
                                   std::int64_t, std::int64_t,
                                   const SampleFilter&);

// Owning-matrix convenience (deduction cannot see through the implicit
// matrix -> view conversion).
template <class Idx>
[[nodiscard]] Result<std::vector<std::uint64_t>> try_pack_spmv_trace_segment(
    const BasicCsrMatrix<Idx>& m, const SpmvLayout& layout,
    const TraceConfig& cfg, std::int64_t cores_per_numa,
    std::int64_t segment, const SampleFilter& filter = SampleFilter{}) {
    return try_pack_spmv_trace_segment(BasicCsrView<Idx>(m), layout, cfg,
                                       cores_per_numa, segment, filter);
}

}  // namespace spmvcache
