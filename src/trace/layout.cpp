#include "trace/layout.hpp"

#include "util/error.hpp"

namespace spmvcache {

SpmvLayout::SpmvLayout(std::int64_t rows, std::int64_t cols, std::int64_t nnz,
                       std::uint64_t line_bytes, std::uint32_t colidx_bytes,
                       std::uint32_t rowptr_bytes)
    : line_bytes_(line_bytes), colidx_bytes_(colidx_bytes),
      rowptr_bytes_(rowptr_bytes) {
    SPMV_EXPECTS(rows >= 0 && cols >= 0 && nnz >= 0);
    SPMV_EXPECTS(line_bytes >= 8);
    SPMV_EXPECTS((line_bytes & (line_bytes - 1)) == 0);
    SPMV_EXPECTS(colidx_bytes == 4 || colidx_bytes == 8);
    SPMV_EXPECTS(rowptr_bytes == 4 || rowptr_bytes == 8);
    per_line8_ = line_bytes / 8;
    per_line_colidx_ = line_bytes / colidx_bytes;
    per_line_rowptr_ = line_bytes / rowptr_bytes;

    auto lines_for = [&](std::uint64_t elements, std::uint64_t elem_bytes) {
        return (elements * elem_bytes + line_bytes - 1) / line_bytes;
    };
    size_[static_cast<int>(DataObject::X)] =
        lines_for(static_cast<std::uint64_t>(cols), 8);
    size_[static_cast<int>(DataObject::Y)] =
        lines_for(static_cast<std::uint64_t>(rows), 8);
    size_[static_cast<int>(DataObject::Values)] =
        lines_for(static_cast<std::uint64_t>(nnz), 8);
    size_[static_cast<int>(DataObject::ColIdx)] =
        lines_for(static_cast<std::uint64_t>(nnz), colidx_bytes);
    size_[static_cast<int>(DataObject::RowPtr)] =
        lines_for(static_cast<std::uint64_t>(rows) + 1, rowptr_bytes);

    std::uint64_t cursor = 0;
    for (int o = 0; o < kDataObjectCount; ++o) {
        base_[o] = cursor;
        cursor += size_[o];
    }
    total_ = cursor;
}

std::uint64_t SpmvLayout::line_of(DataObject object,
                                  std::int64_t i) const noexcept {
    switch (object) {
        case DataObject::X:
            return x_line(i);
        case DataObject::Y:
            return y_line(i);
        case DataObject::Values:
            return values_line(i);
        case DataObject::ColIdx:
            return colidx_line(i);
        case DataObject::RowPtr:
            return rowptr_line(i);
    }
    return 0;
}

DataObject SpmvLayout::object_of(std::uint64_t line) const {
    SPMV_EXPECTS(line < total_);
    for (int o = kDataObjectCount - 1; o >= 0; --o) {
        if (line >= base_[o]) return static_cast<DataObject>(o);
    }
    return DataObject::X;
}

}  // namespace spmvcache
