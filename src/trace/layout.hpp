// Cache-line layout of the SpMV data structures (Fig. 1c of the paper).
//
// Every array is aligned to a cache-line boundary and the arrays are laid
// out back to back: x, y, a (values), colidx, rowptr. Element sizes default
// to the paper's accounting: 8-byte x/y/a/rowptr, 4-byte colidx. The index
// arrays' element sizes are runtime parameters so the layout can also
// describe the W32 storage pipeline (4-byte colidx *and* 4-byte rowptr) or
// the W64 fallback (8-byte colidx) — the locality model picks whichever
// accounting matches the matrix being modelled.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"
#include "sparse/csr_view.hpp"
#include "trace/memref.hpp"

namespace spmvcache {

/// Maps (data object, element index) -> global cache-line number.
class SpmvLayout {
public:
    /// Lays out the arrays for an M-by-N matrix with K nonzeros and a
    /// cache-line size of `line_bytes` (256 on the A64FX; Fig. 1 uses 16).
    /// `colidx_bytes`/`rowptr_bytes` are the index arrays' element sizes;
    /// the defaults match the paper's accounting (4-byte colidx, 8-byte
    /// rowptr). Pre: line_bytes is a power of two >= 8; element sizes are
    /// powers of two in [4, 8] no larger than line_bytes.
    SpmvLayout(std::int64_t rows, std::int64_t cols, std::int64_t nnz,
               std::uint64_t line_bytes, std::uint32_t colidx_bytes = 4,
               std::uint32_t rowptr_bytes = 8);

    /// Convenience: layout for a concrete matrix, with the paper's default
    /// element accounting (independent of the matrix's storage width — the
    /// pinned trace corpus depends on that).
    template <class Idx>
    SpmvLayout(const BasicCsrView<Idx>& m, std::uint64_t line_bytes)
        : SpmvLayout(m.rows(), m.cols(), m.nnz(), line_bytes) {}

    /// Same, from an owning matrix (deduction cannot see through the
    /// implicit matrix -> view conversion).
    template <class Idx>
    SpmvLayout(const BasicCsrMatrix<Idx>& m, std::uint64_t line_bytes)
        : SpmvLayout(m.rows(), m.cols(), m.nnz(), line_bytes) {}

    [[nodiscard]] std::uint64_t line_bytes() const noexcept {
        return line_bytes_;
    }
    /// Element sizes this layout accounts colidx/rowptr at.
    [[nodiscard]] std::uint32_t colidx_bytes() const noexcept {
        return colidx_bytes_;
    }
    [[nodiscard]] std::uint32_t rowptr_bytes() const noexcept {
        return rowptr_bytes_;
    }

    /// Line of x[i] (8-byte elements). Pre: 0 <= i < cols.
    [[nodiscard]] std::uint64_t x_line(std::int64_t i) const noexcept {
        return base_[0] + static_cast<std::uint64_t>(i) / per_line8_;
    }
    /// Line of y[r]. Pre: 0 <= r < rows.
    [[nodiscard]] std::uint64_t y_line(std::int64_t r) const noexcept {
        return base_[1] + static_cast<std::uint64_t>(r) / per_line8_;
    }
    /// Line of a[i]. Pre: 0 <= i < nnz.
    [[nodiscard]] std::uint64_t values_line(std::int64_t i) const noexcept {
        return base_[2] + static_cast<std::uint64_t>(i) / per_line8_;
    }
    /// Line of colidx[i]. Pre: 0 <= i < nnz.
    [[nodiscard]] std::uint64_t colidx_line(std::int64_t i) const noexcept {
        return base_[3] + static_cast<std::uint64_t>(i) / per_line_colidx_;
    }
    /// Line of rowptr[r]. Pre: 0 <= r <= rows.
    [[nodiscard]] std::uint64_t rowptr_line(std::int64_t r) const noexcept {
        return base_[4] + static_cast<std::uint64_t>(r) / per_line_rowptr_;
    }

    /// Line of element `i` of `object` (dispatches to the above).
    [[nodiscard]] std::uint64_t line_of(DataObject object,
                                        std::int64_t i) const noexcept;

    /// First line of each array, in layout order x, y, a, colidx, rowptr.
    [[nodiscard]] std::uint64_t base(DataObject object) const noexcept {
        return base_[static_cast<int>(object)];
    }
    /// Number of lines occupied by `object`.
    [[nodiscard]] std::uint64_t lines_of(DataObject object) const noexcept {
        return size_[static_cast<int>(object)];
    }
    /// Total lines across all five arrays.
    [[nodiscard]] std::uint64_t total_lines() const noexcept { return total_; }

    /// The object owning a given line (for attribution in counters).
    /// Pre: line < total_lines().
    [[nodiscard]] DataObject object_of(std::uint64_t line) const;

private:
    std::uint64_t line_bytes_;
    std::uint32_t colidx_bytes_;
    std::uint32_t rowptr_bytes_;
    std::uint64_t per_line8_;         ///< 8-byte elements per line
    std::uint64_t per_line_colidx_;   ///< colidx elements per line
    std::uint64_t per_line_rowptr_;   ///< rowptr elements per line
    // Indexed by static_cast<int>(DataObject): X, Y, Values, ColIdx, RowPtr.
    std::uint64_t base_[kDataObjectCount];
    std::uint64_t size_[kDataObjectCount];
    std::uint64_t total_;
};

}  // namespace spmvcache
