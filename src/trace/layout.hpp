// Cache-line layout of the SpMV data structures (Fig. 1c of the paper).
//
// Every array is aligned to a cache-line boundary and the arrays are laid
// out back to back: x, y, a (values), colidx, rowptr. Element sizes follow
// the paper: 8-byte x/y/a/rowptr, 4-byte colidx.
#pragma once

#include <cstdint>

#include "sparse/csr_view.hpp"
#include "trace/memref.hpp"

namespace spmvcache {

/// Maps (data object, element index) -> global cache-line number.
class SpmvLayout {
public:
    /// Lays out the arrays for an M-by-N matrix with K nonzeros and a
    /// cache-line size of `line_bytes` (256 on the A64FX; Fig. 1 uses 16).
    /// Pre: line_bytes is a power of two >= 8.
    SpmvLayout(std::int64_t rows, std::int64_t cols, std::int64_t nnz,
               std::uint64_t line_bytes);

    /// Convenience: layout for a concrete matrix.
    SpmvLayout(const CsrView& m, std::uint64_t line_bytes)
        : SpmvLayout(m.rows(), m.cols(), m.nnz(), line_bytes) {}

    [[nodiscard]] std::uint64_t line_bytes() const noexcept {
        return line_bytes_;
    }

    /// Line of x[i] (8-byte elements). Pre: 0 <= i < cols.
    [[nodiscard]] std::uint64_t x_line(std::int64_t i) const noexcept {
        return base_[0] + static_cast<std::uint64_t>(i) / per_line8_;
    }
    /// Line of y[r]. Pre: 0 <= r < rows.
    [[nodiscard]] std::uint64_t y_line(std::int64_t r) const noexcept {
        return base_[1] + static_cast<std::uint64_t>(r) / per_line8_;
    }
    /// Line of a[i]. Pre: 0 <= i < nnz.
    [[nodiscard]] std::uint64_t values_line(std::int64_t i) const noexcept {
        return base_[2] + static_cast<std::uint64_t>(i) / per_line8_;
    }
    /// Line of colidx[i] (4-byte elements). Pre: 0 <= i < nnz.
    [[nodiscard]] std::uint64_t colidx_line(std::int64_t i) const noexcept {
        return base_[3] + static_cast<std::uint64_t>(i) / per_line4_;
    }
    /// Line of rowptr[r]. Pre: 0 <= r <= rows.
    [[nodiscard]] std::uint64_t rowptr_line(std::int64_t r) const noexcept {
        return base_[4] + static_cast<std::uint64_t>(r) / per_line8_;
    }

    /// Line of element `i` of `object` (dispatches to the above).
    [[nodiscard]] std::uint64_t line_of(DataObject object,
                                        std::int64_t i) const noexcept;

    /// First line of each array, in layout order x, y, a, colidx, rowptr.
    [[nodiscard]] std::uint64_t base(DataObject object) const noexcept {
        return base_[static_cast<int>(object)];
    }
    /// Number of lines occupied by `object`.
    [[nodiscard]] std::uint64_t lines_of(DataObject object) const noexcept {
        return size_[static_cast<int>(object)];
    }
    /// Total lines across all five arrays.
    [[nodiscard]] std::uint64_t total_lines() const noexcept { return total_; }

    /// The object owning a given line (for attribution in counters).
    /// Pre: line < total_lines().
    [[nodiscard]] DataObject object_of(std::uint64_t line) const;

private:
    std::uint64_t line_bytes_;
    std::uint64_t per_line8_;  ///< 8-byte elements per line
    std::uint64_t per_line4_;  ///< 4-byte elements per line
    // Indexed by static_cast<int>(DataObject): X, Y, Values, ColIdx, RowPtr.
    std::uint64_t base_[kDataObjectCount];
    std::uint64_t size_[kDataObjectCount];
    std::uint64_t total_;
};

}  // namespace spmvcache
