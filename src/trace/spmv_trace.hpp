// SpMV memory-trace generation from the sparsity pattern (§3.2.1, Fig. 1b).
//
// The trace is *derived*, never recorded from an instrumented run: for each
// row the generator emits the references the CSR kernel of Listing 1 would
// make — rowptr[r], rowptr[r+1], then per nonzero a[i], colidx[i],
// x[colidx[i]], and finally the y[r] read-modify-write — mapped to cache
// lines by SpmvLayout.
//
// Parallel traces interleave the per-thread reference streams. Two
// interleavings are provided:
//  * generate_spmv_trace: deterministic round-robin at a configurable
//    quantum (default: one nonzero per thread per turn), the reproducible
//    stand-in for concurrent execution;
//  * record_spmv_trace_mcs: real std::threads submitting chunks through an
//    MCS queue lock, exactly the mechanism the paper describes (§3.2.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/csr_view.hpp"
#include "sparse/partition.hpp"
#include "trace/layout.hpp"
#include "trace/memref.hpp"
#include "util/error.hpp"

namespace spmvcache {

/// Options for trace generation.
struct TraceConfig {
    std::int64_t threads = 1;
    PartitionPolicy partition = PartitionPolicy::BalancedRows;
    /// Nonzeros each thread advances per round-robin turn.
    std::int64_t quantum = 1;
    /// Software-prefetch distance for the x vector, in nonzeros: at
    /// nonzero i the kernel additionally issues prfm x[colidx[i + D]]
    /// (within the current row). 0 disables. This models the paper's
    /// future-work idea of software prefetching the irregular x accesses.
    std::int64_t x_prefetch_distance = 0;
};

/// Number of references one SpMV iteration generates:
/// 2 rowptr loads + y load + y store per row, and 3 loads per nonzero.
[[nodiscard]] constexpr std::uint64_t spmv_trace_length(
    std::int64_t rows, std::int64_t nnz) noexcept {
    return 4 * static_cast<std::uint64_t>(rows) +
           3 * static_cast<std::uint64_t>(nnz);
}

/// Overflow-checked spmv_trace_length: OverflowError instead of a wrapped
/// count when 4*rows + 3*nnz exceeds uint64 (the wrapped value would
/// silently shrink every downstream reservation and miss total).
[[nodiscard]] Result<std::uint64_t> try_spmv_trace_length(std::int64_t rows,
                                                          std::int64_t nnz);

namespace detail {

/// Per-thread generation cursor over its contiguous row range.
struct TraceCursor {
    std::int64_t row = 0;
    std::int64_t row_end = 0;   ///< one past the last owned row
    std::int64_t i = 0;         ///< next nonzero index within current row
    std::int64_t i_end = 0;     ///< end of current row's nonzeros
    bool row_opened = false;

    [[nodiscard]] bool done() const noexcept {
        return row >= row_end && !row_opened;
    }
};

/// Emits the references of up to `quantum` nonzeros (plus any row-boundary
/// references) for one thread. Returns false once the cursor is exhausted.
/// `x_prefetch_distance` > 0 interleaves prfm hints for x (see
/// TraceConfig::x_prefetch_distance).
template <class Idx, class Sink>
bool advance(const BasicCsrView<Idx>& m, const SpmvLayout& layout,
             std::uint32_t t,
             TraceCursor& cur, std::int64_t quantum, Sink&& sink,
             std::int64_t x_prefetch_distance = 0) {
    if (cur.done()) return false;
    const auto rowptr = m.rowptr();
    const auto colidx = m.colidx();

    std::int64_t budget = quantum;
    while (budget > 0 && !cur.done()) {
        if (!cur.row_opened) {
            // Row header: the kernel loads rowptr[r] and rowptr[r+1].
            sink(MemRef{layout.rowptr_line(cur.row), t, DataObject::RowPtr,
                        false});
            sink(MemRef{layout.rowptr_line(cur.row + 1), t, DataObject::RowPtr,
                        false});
            cur.i = static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(cur.row)]);
            cur.i_end = static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(cur.row) + 1]);
            cur.row_opened = true;
            if (x_prefetch_distance > 0) {
                // Priming prefetches for the first elements of the row.
                const std::int64_t prime_end =
                    std::min(cur.i + x_prefetch_distance, cur.i_end);
                for (std::int64_t p = cur.i; p < prime_end; ++p) {
                    sink(MemRef{
                        layout.x_line(colidx[static_cast<std::size_t>(p)]),
                        t, DataObject::X, false, /*is_prefetch=*/true});
                }
            }
        }
        while (budget > 0 && cur.i < cur.i_end) {
            const std::int64_t i = cur.i++;
            sink(MemRef{layout.values_line(i), t, DataObject::Values, false});
            sink(MemRef{layout.colidx_line(i), t, DataObject::ColIdx, false});
            if (x_prefetch_distance > 0 &&
                i + x_prefetch_distance < cur.i_end) {
                sink(MemRef{layout.x_line(colidx[static_cast<std::size_t>(
                                i + x_prefetch_distance)]),
                            t, DataObject::X, false, /*is_prefetch=*/true});
            }
            sink(MemRef{
                layout.x_line(colidx[static_cast<std::size_t>(i)]), t,
                DataObject::X, false});
            --budget;
        }
        if (cur.i >= cur.i_end) {
            // Row footer: accumulate into y[r] (read-modify-write).
            sink(MemRef{layout.y_line(cur.row), t, DataObject::Y, false});
            sink(MemRef{layout.y_line(cur.row), t, DataObject::Y, true});
            cur.row_opened = false;
            ++cur.row;
        }
    }
    return !cur.done();
}

}  // namespace detail

/// Generates one SpMV iteration's trace, calling sink(const MemRef&) for
/// every reference. With cfg.threads == 1 this is the sequential program
/// order; otherwise the per-thread streams are interleaved round-robin,
/// cfg.quantum nonzeros per thread per turn.
template <class Idx, class Sink>
void generate_spmv_trace(const BasicCsrView<Idx>& m, const SpmvLayout& layout,
                         const TraceConfig& cfg, Sink&& sink) {
    const RowPartition partition(m, cfg.threads, cfg.partition);
    std::vector<detail::TraceCursor> cursors(
        static_cast<std::size_t>(cfg.threads));
    for (std::int64_t t = 0; t < cfg.threads; ++t) {
        const auto& range = partition.range(t);
        cursors[static_cast<std::size_t>(t)] =
            detail::TraceCursor{range.begin, range.end, 0, 0, false};
    }

    bool any_active = true;
    while (any_active) {
        any_active = false;
        for (std::int64_t t = 0; t < cfg.threads; ++t) {
            if (detail::advance(m, layout, static_cast<std::uint32_t>(t),
                                cursors[static_cast<std::size_t>(t)],
                                cfg.quantum, sink, cfg.x_prefetch_distance))
                any_active = true;
        }
    }
}

/// Number of L2 segments a trace configuration spans when simulated
/// threads map to segments in blocks of `cores_per_numa` (segment of
/// thread t = t / cores_per_numa, as on the A64FX's CMGs).
[[nodiscard]] constexpr std::int64_t trace_segment_count(
    std::int64_t threads, std::int64_t cores_per_numa) noexcept {
    return (threads + cores_per_numa - 1) / cores_per_numa;
}

/// Generates only the references whose simulated thread belongs to
/// `segment`, in exactly the order those references appear in the full
/// round-robin interleaving of generate_spmv_trace.
///
/// This is what makes host-parallel sharded model execution possible:
/// each thread's cursor advances independently of the others, so the
/// subsequence owned by one segment's threads is reproduced by
/// round-robining over just those threads — turn by turn, threads in
/// index order, cfg.quantum nonzeros per thread per turn. Extra turns of
/// the full loop in which this segment's threads are already exhausted
/// contribute no references, so the filtered stream is identical.
/// Concatenating the streams of all segments therefore yields a
/// permutation of the full trace that preserves every per-thread (and
/// per-segment) subsequence — the only orderings the per-segment and
/// per-core stack engines can observe.
template <class Idx, class Sink>
void generate_spmv_trace_segment(const BasicCsrView<Idx>& m,
                                 const SpmvLayout& layout,
                                 const TraceConfig& cfg,
                                 std::int64_t cores_per_numa,
                                 std::int64_t segment, Sink&& sink) {
    SPMV_EXPECTS(cores_per_numa >= 1);
    SPMV_EXPECTS(segment >= 0 &&
                 segment < trace_segment_count(cfg.threads, cores_per_numa));
    // The row partition must be derived over *all* threads so each shard
    // sees exactly the row ranges of the unsharded trace.
    const RowPartition partition(m, cfg.threads, cfg.partition);
    const std::int64_t t_begin = segment * cores_per_numa;
    const std::int64_t t_end =
        std::min(cfg.threads, t_begin + cores_per_numa);
    std::vector<detail::TraceCursor> cursors(
        static_cast<std::size_t>(t_end - t_begin));
    for (std::int64_t t = t_begin; t < t_end; ++t) {
        const auto& range = partition.range(t);
        cursors[static_cast<std::size_t>(t - t_begin)] =
            detail::TraceCursor{range.begin, range.end, 0, 0, false};
    }

    bool any_active = true;
    while (any_active) {
        any_active = false;
        for (std::int64_t t = t_begin; t < t_end; ++t) {
            if (detail::advance(m, layout, static_cast<std::uint32_t>(t),
                                cursors[static_cast<std::size_t>(t - t_begin)],
                                cfg.quantum, sink, cfg.x_prefetch_distance))
                any_active = true;
        }
    }
}

/// Materialises a trace into a vector (small matrices / tests).
template <class Idx>
[[nodiscard]] std::vector<MemRef> collect_spmv_trace(
    const BasicCsrView<Idx>& m, const SpmvLayout& layout,
    const TraceConfig& cfg);

/// Materialises one segment's filtered trace (tests / diagnostics).
template <class Idx>
[[nodiscard]] std::vector<MemRef> collect_spmv_trace_segment(
    const BasicCsrView<Idx>& m, const SpmvLayout& layout,
    const TraceConfig& cfg, std::int64_t cores_per_numa,
    std::int64_t segment);

/// Demand-reference count of each segment's filtered trace (one SpMV
/// iteration): 4 refs per owned row + 3 per owned nonzero, summed over the
/// segment's threads. Software-prefetch hints are not counted. The entries
/// sum to spmv_trace_length(rows, nnz) for every partition/quantum choice.
template <class Idx>
[[nodiscard]] std::vector<std::uint64_t> spmv_segment_lengths(
    const BasicCsrView<Idx>& m, const TraceConfig& cfg,
    std::int64_t cores_per_numa);

/// Records a parallel trace with real threads: each worker generates the
/// references of its row range and submits them in chunks of `chunk_refs`
/// through an MCS queue lock (starvation-free, FIFO hand-off), exactly as
/// §3.2.1 describes. The resulting interleaving is a valid concurrent
/// ordering but not deterministic across runs.
template <class Idx>
[[nodiscard]] std::vector<MemRef> record_spmv_trace_mcs(
    const BasicCsrView<Idx>& m, const SpmvLayout& layout,
    std::int64_t threads, std::int64_t chunk_refs = 64,
    PartitionPolicy partition = PartitionPolicy::BalancedRows);

extern template std::vector<MemRef> collect_spmv_trace<Idx32>(
    const BasicCsrView<Idx32>&, const SpmvLayout&, const TraceConfig&);
extern template std::vector<MemRef> collect_spmv_trace<Idx64>(
    const BasicCsrView<Idx64>&, const SpmvLayout&, const TraceConfig&);
extern template std::vector<MemRef> collect_spmv_trace_segment<Idx32>(
    const BasicCsrView<Idx32>&, const SpmvLayout&, const TraceConfig&,
    std::int64_t, std::int64_t);
extern template std::vector<MemRef> collect_spmv_trace_segment<Idx64>(
    const BasicCsrView<Idx64>&, const SpmvLayout&, const TraceConfig&,
    std::int64_t, std::int64_t);
extern template std::vector<std::uint64_t> spmv_segment_lengths<Idx32>(
    const BasicCsrView<Idx32>&, const TraceConfig&, std::int64_t);
extern template std::vector<std::uint64_t> spmv_segment_lengths<Idx64>(
    const BasicCsrView<Idx64>&, const TraceConfig&, std::int64_t);
extern template std::vector<MemRef> record_spmv_trace_mcs<Idx32>(
    const BasicCsrView<Idx32>&, const SpmvLayout&, std::int64_t,
    std::int64_t, PartitionPolicy);
extern template std::vector<MemRef> record_spmv_trace_mcs<Idx64>(
    const BasicCsrView<Idx64>&, const SpmvLayout&, std::int64_t,
    std::int64_t, PartitionPolicy);

// Owning-matrix conveniences: deduction cannot see through the implicit
// matrix -> view conversion.
template <class Idx, class Sink>
void generate_spmv_trace(const BasicCsrMatrix<Idx>& m,
                         const SpmvLayout& layout, const TraceConfig& cfg,
                         Sink&& sink) {
    generate_spmv_trace(BasicCsrView<Idx>(m), layout, cfg,
                        std::forward<Sink>(sink));
}

template <class Idx, class Sink>
void generate_spmv_trace_segment(const BasicCsrMatrix<Idx>& m,
                                 const SpmvLayout& layout,
                                 const TraceConfig& cfg,
                                 std::int64_t cores_per_numa,
                                 std::int64_t segment, Sink&& sink) {
    generate_spmv_trace_segment(BasicCsrView<Idx>(m), layout, cfg,
                                cores_per_numa, segment,
                                std::forward<Sink>(sink));
}

template <class Idx>
[[nodiscard]] std::vector<MemRef> collect_spmv_trace(
    const BasicCsrMatrix<Idx>& m, const SpmvLayout& layout,
    const TraceConfig& cfg) {
    return collect_spmv_trace(BasicCsrView<Idx>(m), layout, cfg);
}

template <class Idx>
[[nodiscard]] std::vector<MemRef> collect_spmv_trace_segment(
    const BasicCsrMatrix<Idx>& m, const SpmvLayout& layout,
    const TraceConfig& cfg, std::int64_t cores_per_numa,
    std::int64_t segment) {
    return collect_spmv_trace_segment(BasicCsrView<Idx>(m), layout, cfg,
                                      cores_per_numa, segment);
}

template <class Idx>
[[nodiscard]] std::vector<std::uint64_t> spmv_segment_lengths(
    const BasicCsrMatrix<Idx>& m, const TraceConfig& cfg,
    std::int64_t cores_per_numa) {
    return spmv_segment_lengths(BasicCsrView<Idx>(m), cfg, cores_per_numa);
}

template <class Idx>
[[nodiscard]] std::vector<MemRef> record_spmv_trace_mcs(
    const BasicCsrMatrix<Idx>& m, const SpmvLayout& layout,
    std::int64_t threads, std::int64_t chunk_refs = 64,
    PartitionPolicy partition = PartitionPolicy::BalancedRows) {
    return record_spmv_trace_mcs(BasicCsrView<Idx>(m), layout, threads,
                                 chunk_refs, partition);
}

}  // namespace spmvcache
