// Memory-trace generation for SELL-C-sigma SpMV — the "can be extended to
// other kernels" claim of the paper's conclusion, realised: the same
// MemRef/sector machinery models the chunked, column-major access pattern
// of spmv_sell, so methods (A)/(B)-style analyses and the simulator apply
// unchanged.
//
// Simplifications (documented): the chunk-offset array is laid out where
// CSR's rowptr would be (it plays the same role), and the row-permutation
// lookups are folded into the y references (perm is consulted exactly
// once per row, immediately before the y update, and occupies a few KiB).
#pragma once

#include <cstdint>

#include "sparse/sellcs.hpp"
#include "trace/layout.hpp"
#include "trace/memref.hpp"

namespace spmvcache {

/// References of one SELL-C-sigma SpMV iteration: 2 chunk-offset loads
/// per chunk, and per stored (padded) element a values, colidx and x
/// load, plus the per-row y read-modify-write.
[[nodiscard]] constexpr std::uint64_t sell_trace_length(
    std::int64_t rows, std::int64_t chunks,
    std::int64_t padded_nnz) noexcept {
    return 2 * static_cast<std::uint64_t>(chunks) +
           2 * static_cast<std::uint64_t>(rows) +
           3 * static_cast<std::uint64_t>(padded_nnz);
}

/// Builds the layout for a SELL matrix: x, y, values and colidx sized by
/// the *padded* element count, the metadata (chunk offsets) in the
/// rowptr slot.
template <class Idx>
[[nodiscard]] SpmvLayout sell_layout(const BasicSellCSigmaMatrix<Idx>& m,
                                     std::uint64_t line_bytes) {
    return SpmvLayout(m.rows(), m.cols(), m.padded_nnz(), line_bytes);
}

/// Generates the trace of one sequential SELL SpMV iteration, calling
/// sink(const MemRef&) per reference. Thread id is always 0 (the SELL
/// analysis in this repository is sequential; chunk-parallel traces would
/// partition chunks the way generate_spmv_trace partitions rows).
template <class Idx, class Sink>
void generate_sell_trace(const BasicSellCSigmaMatrix<Idx>& m,
                         const SpmvLayout& layout, Sink&& sink) {
    const auto colidx = m.colidx();
    const auto perm = m.perm();
    const std::int64_t c = m.chunk_height();
    for (std::int64_t k = 0; k < m.chunks(); ++k) {
        // Chunk header: offsets of this and the next chunk.
        sink(MemRef{layout.rowptr_line(k), 0, DataObject::RowPtr, false});
        sink(MemRef{layout.rowptr_line(k + 1), 0, DataObject::RowPtr, false});
        const std::int64_t base = m.chunk_offset(k);
        const std::int64_t width = m.chunk_width(k);
        const std::int64_t rows_in_chunk = std::min(c, m.rows() - k * c);
        // The kernel walks the chunk column-major: for each j, all C rows.
        for (std::int64_t j = 0; j < width; ++j) {
            for (std::int64_t i = 0; i < rows_in_chunk; ++i) {
                const std::int64_t slot = base + j * c + i;
                sink(MemRef{layout.values_line(slot), 0, DataObject::Values,
                            false});
                sink(MemRef{layout.colidx_line(slot), 0, DataObject::ColIdx,
                            false});
                sink(MemRef{layout.x_line(colidx[static_cast<std::size_t>(
                                slot)]),
                            0, DataObject::X, false});
            }
        }
        for (std::int64_t i = 0; i < rows_in_chunk; ++i) {
            const auto row = perm[static_cast<std::size_t>(k * c + i)];
            sink(MemRef{layout.y_line(row), 0, DataObject::Y, false});
            sink(MemRef{layout.y_line(row), 0, DataObject::Y, true});
        }
    }
}

}  // namespace spmvcache
