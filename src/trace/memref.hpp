// Memory-reference records at cache-line granularity.
//
// The paper's model works on traces of cache-line numbers (Fig. 1) where
// each reference carries the data object it touches; the sector a reference
// belongs to is a *policy* decision layered on top (on real A64FX hardware
// the sector ID rides in the top byte of the virtual address; here it is
// derived from the object by SectorPolicy).
#pragma once

#include <cstdint>

namespace spmvcache {

/// The five data objects of CSR SpMV (Listing 1 of the paper).
enum class DataObject : std::uint8_t {
    X = 0,       ///< input vector, indirectly accessed via colidx
    Y = 1,       ///< output vector
    Values = 2,  ///< nonzero values `a`
    ColIdx = 3,  ///< column indices
    RowPtr = 4,  ///< row pointers
};

inline constexpr int kDataObjectCount = 5;

/// Which data objects are isolated into sector 1 (the "non-reusable"
/// partition); everything else lives in sector 0.
enum class SectorPolicy : std::uint8_t {
    /// Sector cache disabled; every reference counts in partition 0.
    NoPartition,
    /// Listing 1: `a` and `colidx` to sector 1 (the paper's main policy).
    IsolateMatrix,
    /// §3.1 class-(3) variant: `a`, `colidx`, `rowptr` and `y` to sector 1,
    /// leaving all of sector 0 to x.
    IsolateMatrixRowptrY,
    /// §3.2.2 case (3): only x in sector 0, everything else in sector 1.
    IsolateX,
};

/// Sector of `object` under `policy` (0 or 1).
[[nodiscard]] constexpr int sector_of(DataObject object,
                                      SectorPolicy policy) noexcept {
    switch (policy) {
        case SectorPolicy::NoPartition:
            return 0;
        case SectorPolicy::IsolateMatrix:
            return (object == DataObject::Values ||
                    object == DataObject::ColIdx)
                       ? 1
                       : 0;
        case SectorPolicy::IsolateMatrixRowptrY:
            return object == DataObject::X ? 0 : 1;
        case SectorPolicy::IsolateX:
            return object == DataObject::X ? 0 : 1;
    }
    return 0;
}

/// One cache-line access. `line` is a global line number in the unified
/// layout of all five SpMV arrays (see SpmvLayout).
struct MemRef {
    std::uint64_t line = 0;
    std::uint32_t thread = 0;
    DataObject object = DataObject::X;
    bool is_write = false;
    /// Software-prefetch hint (prfm): fetches the line without demanding
    /// it — the paper's "software prefetching in conjunction with the
    /// sector cache" future-work direction.
    bool is_prefetch = false;

    friend bool operator==(const MemRef&, const MemRef&) = default;
};

}  // namespace spmvcache
