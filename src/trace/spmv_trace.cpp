#include "trace/spmv_trace.hpp"

#include <exception>
#include <thread>

#include "sync/mcs_lock.hpp"
#include "util/annotated_mutex.hpp"
#include "util/checked.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace spmvcache {

[[nodiscard]] Result<std::uint64_t> try_spmv_trace_length(
    std::int64_t rows, std::int64_t nnz) {
    if (rows < 0 || nnz < 0)
        return Error(ErrorCode::ValidationError,
                     "negative rows/nnz in trace-length computation");
    SPMV_ASSIGN_OR_RETURN(
        const std::uint64_t row_refs,
        checked_mul<std::uint64_t>(4, static_cast<std::uint64_t>(rows)));
    SPMV_ASSIGN_OR_RETURN(
        const std::uint64_t nnz_refs,
        checked_mul<std::uint64_t>(3, static_cast<std::uint64_t>(nnz)));
    return checked_add(row_refs, nnz_refs);
}

template <class Idx>
std::vector<MemRef> collect_spmv_trace(const BasicCsrView<Idx>& m,
                                       const SpmvLayout& layout,
                                       const TraceConfig& cfg) {
    fault::maybe_throw("trace.generate");
    Result<std::uint64_t> length = try_spmv_trace_length(m.rows(), m.nnz());
    if (!length.ok()) throw_status(std::move(length).to_error());
    std::vector<MemRef> trace;
    trace.reserve(length.value());
    generate_spmv_trace(m, layout, cfg,
                        [&trace](const MemRef& ref) { trace.push_back(ref); });
    return trace;
}

template <class Idx>
std::vector<MemRef> collect_spmv_trace_segment(const BasicCsrView<Idx>& m,
                                               const SpmvLayout& layout,
                                               const TraceConfig& cfg,
                                               std::int64_t cores_per_numa,
                                               std::int64_t segment) {
    fault::maybe_throw("trace.generate");
    std::vector<MemRef> trace;
    // Exact demand-reference count (a lower bound when software-prefetch
    // hints are configured): without it, materialising a large segment
    // reallocates log2(len) times in tests and diagnostics.
    trace.reserve(static_cast<std::size_t>(
        spmv_segment_lengths(m, cfg, cores_per_numa)
            [static_cast<std::size_t>(segment)]));
    generate_spmv_trace_segment(
        m, layout, cfg, cores_per_numa, segment,
        [&trace](const MemRef& ref) { trace.push_back(ref); });
    return trace;
}

template <class Idx>
std::vector<std::uint64_t> spmv_segment_lengths(const BasicCsrView<Idx>& m,
                                                const TraceConfig& cfg,
                                                std::int64_t cores_per_numa) {
    SPMV_EXPECTS(cores_per_numa >= 1);
    const RowPartition partition(m, cfg.threads, cfg.partition);
    const auto rowptr = m.rowptr();
    std::vector<std::uint64_t> lengths(static_cast<std::size_t>(
        trace_segment_count(cfg.threads, cores_per_numa)));
    for (std::int64_t t = 0; t < cfg.threads; ++t) {
        const auto& range = partition.range(t);
        const std::int64_t nnz =
            static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(range.end)]) -
            static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(range.begin)]);
        // Per-segment demand-reference totals feed shard scheduling and
        // the instrumentation output; a wrapped sum here would silently
        // misreport every shard, so the arithmetic is contract-checked.
        std::uint64_t row_refs = 0, nnz_refs = 0, segment_refs = 0;
        SPMV_EXPECT(checked_mul<std::uint64_t>(
            4, static_cast<std::uint64_t>(range.size()), row_refs));
        SPMV_EXPECT(checked_mul<std::uint64_t>(
            3, static_cast<std::uint64_t>(nnz), nnz_refs));
        SPMV_EXPECT(checked_add(row_refs, nnz_refs, segment_refs));
        auto& slot = lengths[static_cast<std::size_t>(t / cores_per_numa)];
        SPMV_EXPECT(checked_add(slot, segment_refs, slot));
    }
    return lengths;
}

template <class Idx>
std::vector<MemRef> record_spmv_trace_mcs(const BasicCsrView<Idx>& m,
                                          const SpmvLayout& layout,
                                          std::int64_t threads,
                                          std::int64_t chunk_refs,
                                          PartitionPolicy partition) {
    SPMV_EXPECTS(threads >= 1);
    SPMV_EXPECTS(chunk_refs >= 1);
    fault::maybe_throw("trace.generate");

    // Workers must not let exceptions escape their thread (std::terminate);
    // the first failure is captured and rethrown on the calling thread
    // after all workers have drained.
    Mutex failure_mutex;
    std::exception_ptr failure;

    Result<std::uint64_t> length = try_spmv_trace_length(m.rows(), m.nnz());
    if (!length.ok()) throw_status(std::move(length).to_error());

    std::vector<MemRef> shared;
    shared.reserve(length.value());
    McsLock lock;
    const RowPartition row_partition(m, threads, partition);

    auto worker = [&](std::int64_t t) {
        const auto& range = row_partition.range(t);
        detail::TraceCursor cursor{range.begin, range.end, 0, 0, false};
        std::vector<MemRef> chunk;
        chunk.reserve(static_cast<std::size_t>(chunk_refs) + 8);

        auto flush = [&] {
            if (chunk.empty()) return;
            McsGuard guard(lock);
            shared.insert(shared.end(), chunk.begin(), chunk.end());
            chunk.clear();
        };

        bool active = true;
        while (active) {
            fault::maybe_throw("trace.worker");
            // Advance until the local chunk reaches the submission size,
            // then publish it under the MCS lock.
            while (active &&
                   static_cast<std::int64_t>(chunk.size()) < chunk_refs) {
                active = detail::advance(
                    m, layout, static_cast<std::uint32_t>(t), cursor,
                    /*quantum=*/1,
                    [&chunk](const MemRef& ref) { chunk.push_back(ref); });
            }
            flush();
        }
    };

    auto guarded_worker = [&](std::int64_t t) {
        try {
            worker(t);
        } catch (...) {
            const MutexLock failure_guard(failure_mutex);
            if (!failure) failure = std::current_exception();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (std::int64_t t = 0; t < threads; ++t)
        pool.emplace_back(guarded_worker, t);
    for (auto& th : pool) th.join();
    if (failure) std::rethrow_exception(failure);

    SPMV_ENSURES(shared.size() == spmv_trace_length(m.rows(), m.nnz()));
    return shared;
}

template std::vector<MemRef> collect_spmv_trace<Idx32>(
    const BasicCsrView<Idx32>&, const SpmvLayout&, const TraceConfig&);
template std::vector<MemRef> collect_spmv_trace<Idx64>(
    const BasicCsrView<Idx64>&, const SpmvLayout&, const TraceConfig&);
template std::vector<MemRef> collect_spmv_trace_segment<Idx32>(
    const BasicCsrView<Idx32>&, const SpmvLayout&, const TraceConfig&,
    std::int64_t, std::int64_t);
template std::vector<MemRef> collect_spmv_trace_segment<Idx64>(
    const BasicCsrView<Idx64>&, const SpmvLayout&, const TraceConfig&,
    std::int64_t, std::int64_t);
template std::vector<std::uint64_t> spmv_segment_lengths<Idx32>(
    const BasicCsrView<Idx32>&, const TraceConfig&, std::int64_t);
template std::vector<std::uint64_t> spmv_segment_lengths<Idx64>(
    const BasicCsrView<Idx64>&, const TraceConfig&, std::int64_t);
template std::vector<MemRef> record_spmv_trace_mcs<Idx32>(
    const BasicCsrView<Idx32>&, const SpmvLayout&, std::int64_t,
    std::int64_t, PartitionPolicy);
template std::vector<MemRef> record_spmv_trace_mcs<Idx64>(
    const BasicCsrView<Idx64>&, const SpmvLayout&, std::int64_t,
    std::int64_t, PartitionPolicy);

}  // namespace spmvcache
