// Reproduces Fig. 4: speedup versus matrix columns (the x-vector size)
// for the sector cache with 5 L2 ways, with each matrix labelled by its
// §3.1 working-set class.
//
// Paper shape: class (1) within ~5% of baseline, class (2) almost always
// improves (up to the 1.6x maximum), class (3) benefit fades as x
// outgrows sector 0.
#include "bench_common.hpp"

#include "model/classify.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_fig4");
    const auto common = parse_common(cli, /*count=*/10, /*scale=*/0.4);
    const auto l2_ways = static_cast<std::uint32_t>(cli.get_int("ways", 5));

    std::cout << "Fig. 4: speedup vs matrix columns, sector cache with "
              << l2_ways << " L2 ways, " << common.threads << " threads\n\n";

    const auto suite = build_suite(common);
    const auto options = experiment_options(common);
    const auto& machine = options.machine;
    const std::uint64_t cache_bytes = machine.l2.size_bytes;
    const std::uint64_t sector0_bytes =
        ways_to_lines(machine.l2, machine.l2.ways - l2_ways) *
        machine.l2.line_bytes;

    struct Row {
        std::string name;
        std::int64_t cols = 0;
        MatrixClass cls = MatrixClass::Class1;
        double speedup = 0.0;
        double diff_demand = 0.0;
    };
    const std::function<Row(const std::string&, const CsrMatrix&)> exp_fn =
        [&](const std::string& name, const CsrMatrix& m) {
            const auto results = run_sector_sweep(
                m, {SectorWays{0, 0}, SectorWays{l2_ways, 0}}, options);
            Row row;
            row.name = name;
            row.cols = m.cols();
            row.cls = classify(m, cache_bytes, sector0_bytes);
            row.speedup = results[1].speedup_over(results[0]);
            row.diff_demand =
                results[1].l2_demand_difference_percent(results[0]);
            return row;
        };
    CollectionOptions copts;
    copts.verbose = true;
    copts.host_threads = common.host_threads;
    const auto outcomes = run_collection<Row>(suite, exp_fn, copts);

    // Scatter rows sorted by columns (the figure's x axis).
    std::vector<Row> rows;
    for (const auto& o : outcomes)
        if (o.ok) rows.push_back(o.result);
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.cols < b.cols; });

    TextTable table({"matrix", "columns", "class", "speedup"});
    std::unique_ptr<CsvWriter> csv;
    if (!common.csv_path.empty())
        csv = std::make_unique<CsvWriter>(
            common.csv_path,
            std::vector<std::string>{"matrix", "columns", "class",
                                     "speedup"});
    for (const auto& row : rows) {
        table.add_row({row.name,
                       fmt_count(static_cast<unsigned long long>(row.cols)),
                       to_string(row.cls), fmt(row.speedup, 3)});
        if (csv)
            csv->write_row({row.name, std::to_string(row.cols),
                            to_string(row.cls), fmt(row.speedup, 5)});
    }
    table.render(std::cout);

    // Per-class summary (the figure's visual grouping).
    std::cout << "\nPer-class speedup summary:\n";
    TextTable summary(boxplot_headers("class"));
    for (const auto cls :
         {MatrixClass::Class1, MatrixClass::Class2, MatrixClass::Class3a,
          MatrixClass::Class3b}) {
        std::vector<double> values;
        for (const auto& row : rows)
            if (row.cls == cls) values.push_back(row.speedup);
        if (!values.empty())
            summary.add_row(boxplot_row(to_string(cls), values, 3));
    }
    summary.render(std::cout);
    return 0;
}
