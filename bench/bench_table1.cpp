// Reproduces Table 1: performance (Gflop/s) of CSR SpMV using 48 threads
// on the (simulated) A64FX, without the sector cache, for synthetic
// analogues of the paper's 18 SuiteSparse matrices.
//
// Default --scale 0.02 shrinks dimensions 50x so the run finishes in
// seconds; the nonzeros-per-row structure (which drives the Gflop/s
// ordering) is preserved. Absolute numbers come from the analytic timing
// model — compare the *shape* against the paper's columns, not the values.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_table1");
    const double scale = cli.get_double("scale", 0.25);
    const std::int64_t threads = cli.get_int("threads", 48);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

    std::cout << "Table 1: CSR SpMV performance, " << threads
              << " threads, no sector cache (analogue scale " << scale
              << ")\n\n";

    const auto suite = gen::table1_suite(scale, seed);
    const auto& reference = gen::table1_reference();

    ExperimentOptions options;
    options.machine = a64fx_default();
    options.threads = threads;

    TextTable table({"Matrix", "Rows", "Nonzeros", "Gflop/s (sim)",
                     "Gflop/s (paper)", "Gflop/s (Alappat)"});
    std::vector<double> sim_gflops, paper_gflops;

    for (std::size_t i = 0; i < suite.size(); ++i) {
        const CsrMatrix m = suite[i].factory();
        const auto results =
            run_sector_sweep(m, {SectorWays{0, 0}}, options);
        const double gflops = results.front().timing.gflops;
        sim_gflops.push_back(gflops);
        paper_gflops.push_back(reference[i].gflops_paper);
        table.add_row({suite[i].name,
                       fmt_count(static_cast<unsigned long long>(m.rows())),
                       fmt_count(static_cast<unsigned long long>(m.nnz())),
                       fmt(gflops, 1), fmt(reference[i].gflops_paper, 1),
                       fmt(reference[i].gflops_alappat, 1)});
        std::cerr << "[" << i + 1 << "/" << suite.size() << "] "
                  << suite[i].name << " done\n";
    }
    table.render(std::cout);

    // Shape agreement: rank correlation between simulated and paper
    // Gflop/s (who is fast and who is slow should match).
    auto ranks = [](const std::vector<double>& v) {
        std::vector<std::size_t> idx(v.size());
        for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
        std::sort(idx.begin(), idx.end(),
                  [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
        std::vector<double> rank(v.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            rank[idx[i]] = static_cast<double>(i);
        return rank;
    };
    const auto ra = ranks(sim_gflops);
    const auto rb = ranks(paper_gflops);
    double d2 = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i)
        d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
    const double n = static_cast<double>(ra.size());
    const double spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
    std::cout << "\nSpearman rank correlation vs paper column: "
              << fmt(spearman, 3) << "\n";
    std::cout << "Simulated range: " << fmt(*std::min_element(
                     sim_gflops.begin(), sim_gflops.end()), 1)
              << " - "
              << fmt(*std::max_element(sim_gflops.begin(), sim_gflops.end()),
                     1)
              << " Gflop/s (paper: 5.8 - 117.8)\n";
    return 0;
}
