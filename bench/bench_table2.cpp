// Reproduces Table 2: mean and standard deviation of the absolute
// percentage error of the L2 cache-miss prediction for *sequential*
// iterative SpMV, methods (A) and (B), without the sector cache and with
// 2-7 L2 ways for sector 1. Only matrices larger than the (single) 8 MiB
// L2 segment are aggregated, as in the paper.
//
// Paper values: method (A) ~1.5-2.7 % everywhere; method (B) similar when
// partitioned but 6.5 % (std 16 %) without partitioning.
#include "bench_mape.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_table2");
    auto common = parse_common(cli, /*count=*/8, /*scale=*/0.3);
    common.threads = cli.get_int("threads", 1);

    std::cout << "Table 2: absolute percentage error of L2 miss "
                 "prediction, sequential SpMV\n";
    return run_mape_bench("MAPE over matrices > 8 MiB:", common,
                          8ull * 1024 * 1024, /*suite_t_min=*/0.3);
}
