// Serve-daemon round-trip cost: cold-miss latency (load + fingerprint +
// model + cache insert) versus plan-cache-hit latency (fingerprint + LRU
// lookup + payload replay), plus sustained request throughput through the
// full run() loop with its bounded admission queue.
//
// Emits a perf-trajectory point to BENCH_serve.json (--out overrides the
// path). --smoke shrinks the request counts and matrix sizes for CI.
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"

namespace {

using namespace spmvcache;

std::string predict_line(const std::string& id, const std::string& spec,
                         std::int64_t threads) {
    return "{\"id\":\"" + id + "\",\"op\":\"predict\",\"gen\":\"" + spec +
           "\",\"threads\":" + std::to_string(threads) + "}";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_serve");
    const bool smoke = cli.has("smoke");
    const std::int64_t threads = cli.get_int("threads", 4);
    // Distinct matrices for the cold legs: generator sizes step so every
    // request carries a different fingerprint.
    const std::int64_t cold_count =
        cli.get_int("cold", smoke ? 8 : 32);
    const std::int64_t hit_count =
        cli.get_int("hits", smoke ? 200 : 2000);
    const std::int64_t stream_count =
        cli.get_int("stream", smoke ? 400 : 4000);
    const std::int64_t base = cli.get_int("size", smoke ? 24 : 96);

    std::cout << "Serve round-trip cost, " << cold_count
              << " cold misses / " << hit_count << " cache hits / "
              << stream_count << " streamed requests\n\n";

    ServeOptions options;
    options.workers = 4;
    options.queue_capacity = 8192;  // throughput leg feeds one burst
    Server server(options);

    // Cold misses: every spec is new to the cache.
    Timer cold_timer;
    for (std::int64_t i = 0; i < cold_count; ++i) {
        const std::string spec =
            "stencil2d5:" + std::to_string(base + i);
        const std::string line = server.handle_line(
            predict_line("cold" + std::to_string(i), spec, threads));
        if (line.find("\"ok\":true") == std::string::npos) {
            std::cerr << "FATAL: cold request failed: " << line << "\n";
            return 1;
        }
    }
    const double cold_seconds = cold_timer.seconds();

    // Cache hits: one spec, replayed from the plan cache every time.
    const std::string hot_spec = "stencil2d5:" + std::to_string(base);
    Timer hit_timer;
    for (std::int64_t i = 0; i < hit_count; ++i) {
        const std::string line = server.handle_line(
            predict_line("hit" + std::to_string(i), hot_spec, threads));
        if (line.find("\"cache_hit\":true") == std::string::npos) {
            std::cerr << "FATAL: expected a cache hit: " << line << "\n";
            return 1;
        }
    }
    const double hit_seconds = hit_timer.seconds();

    // Sustained throughput through the full loop: a burst of mixed
    // requests (hits dominate, like a tuning sweep revisiting matrices).
    std::ostringstream in_text;
    for (std::int64_t i = 0; i < stream_count; ++i) {
        const std::string spec =
            "stencil2d5:" +
            std::to_string(base + (i % (cold_count > 0 ? cold_count : 1)));
        in_text << predict_line("s" + std::to_string(i), spec, threads)
                << "\n";
    }
    in_text << "{\"id\":\"end\",\"op\":\"shutdown\"}\n";
    std::istringstream in(in_text.str());
    std::ostringstream out, log;
    Timer stream_timer;
    if (server.run(in, out, log) != 0) {
        std::cerr << "FATAL: serve loop did not drain cleanly\n";
        return 1;
    }
    const double stream_seconds = stream_timer.seconds();

    const ServeStats stats = server.stats();
    const double cold_ms =
        cold_count > 0 ? 1e3 * cold_seconds /
                             static_cast<double>(cold_count)
                       : 0.0;
    const double hit_us =
        hit_count > 0
            ? 1e6 * hit_seconds / static_cast<double>(hit_count)
            : 0.0;
    const double req_per_sec =
        stream_seconds > 0
            ? static_cast<double>(stream_count) / stream_seconds
            : 0.0;
    const double speedup =
        hit_us > 0 ? 1e3 * cold_ms / hit_us : 0.0;

    TextTable table({"leg", "requests", "latency", "note"});
    table.add_row({"cold miss", std::to_string(cold_count),
                   fmt(cold_ms, 3) + " ms",
                   "load + fingerprint + model + insert"});
    table.add_row({"cache hit", std::to_string(hit_count),
                   fmt(hit_us, 1) + " us",
                   "fingerprint + LRU replay (x" + fmt(speedup, 0) +
                       " vs cold)"});
    table.add_row({"streamed", std::to_string(stream_count),
                   fmt(req_per_sec, 0) + " req/s",
                   "full loop, " + std::to_string(options.workers) +
                       " workers"});
    table.render(std::cout);
    std::cout << "cache: " << stats.cache.insertions << " insertions, "
              << stats.cache_hits << " hits, " << stats.rejected_overload
              << " overload rejections\n";

    const std::string out_path = cli.get("out", "BENCH_serve.json");
    std::ofstream json(out_path);
    if (json) {
        json << "{\"bench\": \"serve\", \"smoke\": "
             << (smoke ? "true" : "false")
             << ", \"threads\": " << threads
             << ",\n \"cold_miss\": {\"requests\": " << cold_count
             << ", \"avg_ms\": " << cold_ms
             << "},\n \"cache_hit\": {\"requests\": " << hit_count
             << ", \"avg_us\": " << hit_us
             << ", \"speedup_vs_cold\": " << speedup
             << "},\n \"stream\": {\"requests\": " << stream_count
             << ", \"req_per_sec\": " << req_per_sec
             << ", \"workers\": " << options.workers << "}}\n";
        std::cout << "perf point written to " << out_path << "\n";
    } else {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    return 0;
}
