// Shared implementation of Tables 2 and 3: MAPE (and standard deviation
// of the absolute percentage error) of the L2 cache-miss predictions of
// methods (A) and (B) against the simulator, per sector configuration.
#pragma once

#include "bench_common.hpp"

namespace spmvcache::bench {

/// Per-matrix comparison record kept for the MAPE aggregation.
struct MapeRecord {
    std::string name;
    MatrixStats stats;
    std::vector<double> measured;     ///< index 0 = no sector cache
    std::vector<double> predicted_a;
    std::vector<double> predicted_b;
    double x_fraction = 0.0;  ///< §4.5.5 hard-case criterion
    double seconds_a = 0.0;
    double seconds_b = 0.0;
    double measured_l1 = 0.0;
    double predicted_l1_a = 0.0;
    double predicted_l1_b = 0.0;
};

/// Runs Table 2 (threads == 1) or Table 3 (threads == 48): prints the
/// MAPE table over all matrices whose working set exceeds
/// `min_working_set`, the filtered (mu_K >= 8, CV <= 1) subset of §4.5.2,
/// the hard-case subset (x traffic >= 50 %), the L1 MAPE of §4.5.4 and
/// the method runtime overhead of §4.5.1.
inline int run_mape_bench(const char* title, const CommonOptions& common,
                          std::uint64_t min_working_set,
                          double suite_t_min = 0.0) {
    const std::vector<std::uint32_t> way_options = {2, 3, 4, 5, 6, 7};
    const auto suite = build_suite(common, suite_t_min);
    auto options = experiment_options(common);

    std::vector<MapeRecord> records;
    const std::function<MapeRecord(const std::string&, const CsrMatrix&)>
        exp_fn = [&](const std::string& name, const CsrMatrix& m) {
            MapeRecord rec;
            rec.name = name;
            const auto cmp = model_vs_measured(m, way_options, options);
            rec.stats = cmp.stats;
            rec.measured = cmp.measured_l2;
            for (const auto& c : cmp.method_a.configs)
                rec.predicted_a.push_back(c.l2_misses);
            for (const auto& c : cmp.method_b.configs)
                rec.predicted_b.push_back(c.l2_misses);
            rec.x_fraction = cmp.method_a.x_traffic_fraction;
            rec.seconds_a = cmp.method_a.seconds;
            rec.seconds_b = cmp.method_b.seconds;
            rec.measured_l1 = cmp.measured_l1_unpartitioned;
            rec.predicted_l1_a = cmp.method_a.l1_misses;
            rec.predicted_l1_b = cmp.method_b.l1_misses;
            return rec;
        };
    CollectionOptions copts;
    copts.verbose = true;
    copts.host_threads = common.host_threads;
    const auto outcomes = run_collection<MapeRecord>(suite, exp_fn, copts);

    std::size_t skipped_small = 0;
    for (const auto& o : outcomes) {
        if (!o.ok) continue;
        if (o.result.stats.working_set_bytes <= min_working_set) {
            ++skipped_small;
            continue;
        }
        records.push_back(o.result);
    }
    std::cout << "\n" << records.size() << " matrices above "
              << fmt_bytes(min_working_set) << " (" << skipped_small
              << " below threshold skipped, as in the paper)\n\n";
    if (records.empty()) {
        std::cout << "no matrices to aggregate — increase --count/--scale\n";
        return 1;
    }

    auto mape_row = [&](const std::string& label, std::size_t config_index,
                        const std::vector<const MapeRecord*>& subset) {
        std::vector<double> measured, pa, pb;
        for (const auto* r : subset) {
            measured.push_back(r->measured[config_index]);
            pa.push_back(r->predicted_a[config_index]);
            pb.push_back(r->predicted_b[config_index]);
        }
        return std::vector<std::string>{
            label, fmt(mape(measured, pa), 2) + " %",
            fmt(ape_stddev(measured, pa), 2) + " %",
            fmt(mape(measured, pb), 2) + " %",
            fmt(ape_stddev(measured, pb), 2) + " %"};
    };

    std::vector<const MapeRecord*> all;
    for (const auto& r : records) all.push_back(&r);

    std::cout << title << "\n";
    TextTable table({"L2 Sector Cache", "A: Mean", "A: Std", "B: Mean",
                     "B: Std"});
    table.add_row(mape_row("No Sector Cache", 0, all));
    for (std::size_t i = 0; i < way_options.size(); ++i)
        table.add_row(mape_row(std::to_string(way_options[i]) + " L2 ways",
                               i + 1, all));
    table.render(std::cout);

    // §4.5.2/4.5.3: filtered subset where method (B) is reliable.
    std::vector<const MapeRecord*> filtered;
    for (const auto& r : records)
        if (r.stats.mean_nnz_per_row >= 8.0 && r.stats.cv_nnz_per_row <= 1.0)
            filtered.push_back(&r);
    if (!filtered.empty()) {
        std::cout << "\nFiltered subset (mu_K >= 8, CV <= 1): "
                  << filtered.size() << " matrices\n";
        TextTable ft({"L2 Sector Cache", "A: Mean", "A: Std", "B: Mean",
                      "B: Std"});
        ft.add_row(mape_row("No Sector Cache", 0, filtered));
        ft.render(std::cout);
    }

    // §4.5.5: hard cases where x causes >= 50 % of the predicted traffic.
    std::vector<const MapeRecord*> hard;
    for (const auto& r : records)
        if (r.x_fraction >= 0.5) hard.push_back(&r);
    std::cout << "\nHard cases (x >= 50 % of traffic): " << hard.size()
              << " matrices (paper: 42/490; MAPE ~8-10 %)\n";
    if (!hard.empty()) {
        TextTable ht({"L2 Sector Cache", "A: Mean", "A: Std", "B: Mean",
                      "B: Std"});
        ht.add_row(mape_row("No Sector Cache", 0, hard));
        ht.add_row(mape_row("5 L2 ways", 4, hard));
        ht.render(std::cout);
    }

    // §4.5.4: L1 miss prediction accuracy (unpartitioned).
    {
        std::vector<double> measured, pa, pb;
        for (const auto& r : records) {
            measured.push_back(r.measured_l1);
            pa.push_back(r.predicted_l1_a);
            pb.push_back(r.predicted_l1_b);
        }
        std::cout << "\nL1 miss prediction (no partitioning): method (A) "
                  << fmt(mape(measured, pa), 2) << " %, method (B) "
                  << fmt(mape(measured, pb), 2)
                  << " %  (paper: ~8.4-8.9 % / ~13.7-15.3 %)\n";
    }

    // §4.5.1: model runtime overhead.
    double ta = 0.0, tb = 0.0;
    for (const auto& r : records) {
        ta += r.seconds_a;
        tb += r.seconds_b;
    }
    std::cout << "\nModel runtime: t_A total " << fmt(ta, 2)
              << " s, t_B total " << fmt(tb, 2) << " s, overhead t_A/t_B "
              << fmt(tb > 0 ? ta / tb : 0.0, 2)
              << "x (paper: 4.21x at 1 thread, 3.02x at 48)\n";

    if (!common.csv_path.empty()) {
        CsvWriter csv(common.csv_path,
                      {"matrix", "config", "measured", "predicted_a",
                       "predicted_b"});
        for (const auto& r : records) {
            for (std::size_t c = 0; c < r.measured.size(); ++c) {
                const std::string cfg =
                    c == 0 ? "off" : std::to_string(way_options[c - 1]);
                csv.write_row({r.name, cfg, fmt(r.measured[c], 0),
                               fmt(r.predicted_a[c], 0),
                               fmt(r.predicted_b[c], 0)});
            }
        }
    }
    return 0;
}

}  // namespace spmvcache::bench
