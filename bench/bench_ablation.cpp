// Ablation experiments for the design choices the paper discusses:
//
//  (a) §4.3 prefetch-distance sweep: with the default aggressive L2
//      prefetch distance, a 2-way sector evicts prefetched lines before
//      use; after reducing the distance, 2 ways ~ 4 ways.
//  (b) RCM reordering (the optimisation behind Alappat et al.'s higher
//      numbers for kkt_power/audikw_1-style matrices in Table 1).
//  (c) Nonzero-balanced vs row-balanced thread partitioning (the second
//      Alappat et al. optimisation).
#include "bench_common.hpp"

#include "sparse/rcm.hpp"
#include "util/prng.hpp"
#include "sparse/sellcs.hpp"
#include "trace/sell_trace.hpp"

namespace {

using namespace spmvcache;
using namespace spmvcache::bench;

void prefetch_distance_sweep(const CommonOptions& common) {
    std::cout << "--- (a) Prefetch distance vs small sectors (§4.3) ---\n"
              << "Paper: after reducing the prefetch distance, 2 L2 ways "
                 "produce results similar to 4 L2 ways.\n\n";
    gen::SuiteOptions sopt;
    sopt.count = 8;
    sopt.scale = common.scale;
    sopt.t_min = 0.6;  // large enough to stream through the 48-thread L2
    sopt.seed = common.seed;
    auto suite = gen::synthetic_suite(sopt);
    if (suite.size() > 5) suite.resize(5);

    TextTable table({"L2 prefetch distance", "median diff 2 ways [%]",
                     "median diff 4 ways [%]", "premature evictions/matrix"});
    for (const std::uint32_t distance : {192u, 64u, 16u}) {
        std::vector<double> diff2, diff4;
        double premature = 0.0;
        std::size_t measured = 0;
        for (const auto& spec : suite) {
            const CsrMatrix m = spec.factory();
            ExperimentOptions options = experiment_options(common);
            options.machine.l2_prefetch.distance = distance;
            const auto results = run_sector_sweep(
                m, {SectorWays{0, 0}, SectorWays{2, 0}, SectorWays{4, 0}},
                options);
            std::cerr << "distance " << distance << ": " << spec.name
                      << " done\n";
            if (results[0].l2.fills() < 10000) continue;  // below floor
            diff2.push_back(
                results[1].l2_miss_difference_percent(results[0]));
            diff4.push_back(
                results[2].l2_miss_difference_percent(results[0]));
            premature += static_cast<double>(
                results[1].l2.prefetch_unused_evictions);
            ++measured;
        }
        if (measured == 0) continue;
        table.add_row({std::to_string(distance), fmt(median(diff2), 2),
                       fmt(median(diff4), 2),
                       fmt(premature / static_cast<double>(measured), 0)});
    }
    table.render(std::cout);
}

void rcm_ablation(const CommonOptions& common) {
    std::cout << "\n--- (b) RCM reordering (Table 1 discussion) ---\n"
              << "A matrix with hidden structure delivered in a bad row "
                 "order (here: a banded matrix under a random permutation) "
                 "regains x locality from RCM — Alappat et al.'s "
                 "optimisation missing from the paper's Table 1 runs.\n\n";
    ExperimentOptions options = experiment_options(common);
    TextTable table({"ordering", "bandwidth", "Gflop/s", "L2 misses"});

    // x must exceed one 8 MiB segment for locality in x to matter.
    const std::int64_t n = std::max<std::int64_t>(
        1 << 20, static_cast<std::int64_t>(8388608.0 * common.scale));
    const CsrMatrix banded = gen::banded(n, 12, n / 512, common.seed);

    // Deterministic shuffle destroying the row order.
    std::vector<std::int32_t> shuffle(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        shuffle[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
    Xoshiro256 rng(common.seed);
    for (std::size_t i = shuffle.size() - 1; i > 0; --i)
        std::swap(shuffle[i],
                  shuffle[rng.bounded(static_cast<std::uint64_t>(i + 1))]);
    const CsrMatrix shuffled = banded.permuted_symmetric(shuffle);
    const CsrMatrix restored = rcm_reorder(shuffled);

    for (const auto& [label, matrix] :
         {std::pair<const char*, const CsrMatrix*>{"original banded",
                                                   &banded},
          {"shuffled", &shuffled},
          {"shuffled + RCM", &restored}}) {
        const auto result =
            run_sector_sweep(*matrix, {SectorWays{0, 0}}, options).front();
        table.add_row({label,
                       fmt_count(static_cast<unsigned long long>(
                           compute_stats(*matrix).bandwidth)),
                       fmt(result.timing.gflops, 1),
                       fmt_count(result.l2.fills())});
        std::cerr << "rcm ablation: " << label << " done\n";
    }
    table.render(std::cout);
}

void partition_ablation(const CommonOptions& common) {
    std::cout << "\n--- (c) Row-balanced vs nonzero-balanced partitioning "
                 "---\n"
              << "Power-law matrices (bundle_adj/kkt_power-style) lose to "
                 "load imbalance under the Listing-1 static schedule.\n\n";
    // RMAT: the dense head rows all land on the first threads.
    const CsrMatrix m =
        gen::rmat(18, 12 * (1 << 18), common.seed);

    TextTable table({"partitioning", "imbalance (max/mean nnz)",
                     "Gflop/s"});
    for (const auto policy : {PartitionPolicy::BalancedRows,
                              PartitionPolicy::BalancedNonzeros}) {
        ExperimentOptions options = experiment_options(common);
        options.partition = policy;
        const auto result =
            run_sector_sweep(m, {SectorWays{0, 0}}, options).front();
        const RowPartition partition(m, options.threads, policy);
        table.add_row(
            {policy == PartitionPolicy::BalancedRows ? "balanced rows"
                                                     : "balanced nonzeros",
             fmt(partition.imbalance(m), 2), fmt(result.timing.gflops, 1)});
        std::cerr << "partitioning ablation step done\n";
    }
    table.render(std::cout);
}

void sell_ablation(const CommonOptions& common) {
    std::cout << "\n--- (d) SELL-C-sigma vs CSR under the sector cache "
                 "(paper future work) ---\n"
              << "Alappat et al. found SELL-C-sigma faster than CSR on the "
                 "A64FX but did not test it with the sector cache; here "
                 "both formats run through the same simulator (sequential, "
                 "one 8 MiB segment).\n\n";
    const std::int64_t n =
        static_cast<std::int64_t>(262144.0 * common.scale * 4);
    const CsrMatrix csr =
        gen::random_variable_rows(n, n, 16.0, 1.5, common.seed);
    const SellCSigmaMatrix sell(csr, 8, 256);

    A64fxConfig machine = a64fx_default();
    machine.cores = 1;

    TextTable table({"format", "sector", "L2 misses", "padding"});
    // CSR rows via the standard experiment driver.
    ExperimentOptions options;
    options.machine = a64fx_default();
    options.threads = 1;
    const auto csr_results = run_sector_sweep(
        csr, {SectorWays{0, 0}, SectorWays{5, 0}}, options);
    table.add_row({"CSR", "off", fmt_count(csr_results[0].l2.fills()),
                   "1.00"});
    table.add_row({"CSR", "5 L2 ways", fmt_count(csr_results[1].l2.fills()),
                   "1.00"});

    // SELL rows via the SELL trace generator.
    const SpmvLayout layout = sell_layout(sell, machine.l2.line_bytes);
    for (const std::uint32_t ways : {0u, 5u}) {
        MemoryHierarchy sim(machine);
        sim.set_sector_ways(SectorWays{ways, 0});
        for (int iteration = 0; iteration < 2; ++iteration) {
            if (iteration == 1) sim.reset_counters();
            generate_sell_trace(sell, layout, [&](const MemRef& ref) {
                sim.access(ref, SectorPolicy::IsolateMatrix);
            });
        }
        table.add_row({"SELL-8-256",
                       ways == 0 ? "off" : "5 L2 ways",
                       fmt_count(sim.l2_total().fills()),
                       fmt(sell.padding_factor(), 3)});
        std::cerr << "SELL ways=" << ways << " done\n";
    }
    table.render(std::cout);
}

void replacement_ablation(const CommonOptions& common) {
    std::cout << "\n--- (e) Replacement policy: exact LRU vs pseudo-LRU "
                 "(NRU) ---\n"
              << "The model assumes LRU (§2.2: 'we assume that a "
                 "pseudo-LRU policy is used'); this quantifies the error "
                 "contribution of that assumption.\n\n";
    const std::int64_t n = std::max<std::int64_t>(
        1 << 20, static_cast<std::int64_t>(5242880.0 * common.scale));
    const CsrMatrix m = gen::random_uniform(n, n, 8, common.seed);

    ModelOptions model_options;
    model_options.machine = a64fx_default();
    model_options.threads = 1;
    model_options.l2_way_options = {5};
    model_options.predict_l1 = false;
    const auto predicted = run_method_a(m, model_options);

    TextTable table({"replacement", "measured L2 misses (5 ways)",
                     "model error [%]"});
    for (const auto policy :
         {ReplacementPolicy::Lru, ReplacementPolicy::Nru}) {
        ExperimentOptions options;
        options.machine = a64fx_default();
        options.machine.l1.replacement = policy;
        options.machine.l2.replacement = policy;
        options.threads = 1;
        const auto measured =
            run_sector_sweep(m, {SectorWays{5, 0}}, options).front();
        const double err =
            100.0 *
            (predicted.at(5).l2_misses -
             static_cast<double>(measured.l2.fills())) /
            static_cast<double>(measured.l2.fills());
        table.add_row({policy == ReplacementPolicy::Lru ? "LRU" : "NRU",
                       fmt_count(measured.l2.fills()), fmt(err, 2)});
        std::cerr << "replacement ablation: "
                  << (policy == ReplacementPolicy::Lru ? "LRU" : "NRU")
                  << " done\n";
    }
    table.render(std::cout);
}

void software_prefetch_ablation(const CommonOptions& common) {
    std::cout << "\n--- (f) Software prefetching of x + sector cache "
                 "(paper future work) ---\n"
              << "prfm hints for x[colidx[i+D]] turn irregular demand "
                 "misses into prefetch fills the latency model does not "
                 "penalise.\n\n";
    const std::int64_t n =
        static_cast<std::int64_t>(262144.0 * common.scale * 8);
    const CsrMatrix m = gen::random_uniform(n, n, 16, common.seed);

    TextTable table({"x prefetch distance", "L2 demand misses",
                     "L2 misses", "Gflop/s"});
    for (const std::int64_t distance : {0, 8, 32}) {
        ExperimentOptions options;
        options.machine = a64fx_default();
        options.x_prefetch_distance = distance;
        const auto r =
            run_sector_sweep(m, {SectorWays{5, 0}}, options).front();
        table.add_row({std::to_string(distance),
                       fmt_count(r.l2.demand_misses()),
                       fmt_count(r.l2.fills()), fmt(r.timing.gflops, 1)});
        std::cerr << "sw prefetch D=" << distance << " done\n";
    }
    table.render(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
    const CliParser cli(argc, argv);
    print_usage_hint("bench_ablation");
    const auto common = parse_common(cli, /*count=*/6, /*scale=*/0.25);

    prefetch_distance_sweep(common);
    rcm_ablation(common);
    partition_ablation(common);
    sell_ablation(common);
    replacement_ablation(common);
    software_prefetch_ablation(common);
    return 0;
}
