// Reproduces Fig. 5: speedup versus the relative difference in L2
// *demand* misses for the sector cache with 5 L2 ways, restricted to
// matrices whose working set exceeds the L2 cache (classes 2/3a/3b).
// Also reproduces the §4.4 bandwidth-utilisation analysis: the top
// matrices by speedup are not the bandwidth-bound ones.
//
// Paper shape: speedup correlates with demand-miss reduction; the largest
// speedups (1.2x+) come with 30-80% fewer demand misses.
#include "bench_common.hpp"

#include "model/classify.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_fig5");
    const auto common = parse_common(cli, /*count=*/10, /*scale=*/0.4);
    const auto l2_ways = static_cast<std::uint32_t>(cli.get_int("ways", 5));

    std::cout << "Fig. 5: speedup vs % difference in L2 demand misses, "
              << l2_ways << " L2 ways, " << common.threads
              << " threads, working sets > L2\n\n";

    const auto suite = build_suite(common);
    const auto options = experiment_options(common);
    const auto& machine = options.machine;
    const std::uint64_t cache_bytes = machine.l2.size_bytes;
    const std::uint64_t sector0_bytes =
        ways_to_lines(machine.l2, machine.l2.ways - l2_ways) *
        machine.l2.line_bytes;

    struct Row {
        std::string name;
        MatrixClass cls = MatrixClass::Class1;
        double speedup = 0.0;
        double diff_demand = 0.0;
        double bandwidth_base = 0.0;  ///< GB/s without sector cache
        double bandwidth_sc = 0.0;    ///< GB/s with sector cache
        bool above_l2 = false;
    };
    const std::function<Row(const std::string&, const CsrMatrix&)> exp_fn =
        [&](const std::string& name, const CsrMatrix& m) {
            const auto results = run_sector_sweep(
                m, {SectorWays{0, 0}, SectorWays{l2_ways, 0}}, options);
            Row row;
            row.name = name;
            row.cls = classify(m, cache_bytes, sector0_bytes);
            row.speedup = results[1].speedup_over(results[0]);
            row.diff_demand =
                results[1].l2_demand_difference_percent(results[0]);
            row.bandwidth_base = results[0].timing.bandwidth_gbs;
            row.bandwidth_sc = results[1].timing.bandwidth_gbs;
            row.above_l2 = m.working_set_bytes() > cache_bytes;
            return row;
        };
    CollectionOptions copts;
    copts.verbose = true;
    copts.host_threads = common.host_threads;
    const auto outcomes = run_collection<Row>(suite, exp_fn, copts);

    std::vector<Row> rows;
    for (const auto& o : outcomes)
        if (o.ok && o.result.above_l2) rows.push_back(o.result);
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        return a.diff_demand < b.diff_demand;
    });

    TextTable table(
        {"matrix", "class", "diff demand misses [%]", "speedup"});
    std::unique_ptr<CsvWriter> csv;
    if (!common.csv_path.empty())
        csv = std::make_unique<CsvWriter>(
            common.csv_path,
            std::vector<std::string>{"matrix", "class", "diff_demand",
                                     "speedup", "bw_base_gbs", "bw_sc_gbs"});
    for (const auto& row : rows) {
        table.add_row({row.name, to_string(row.cls), fmt(row.diff_demand, 1),
                       fmt(row.speedup, 3)});
        if (csv)
            csv->write_row({row.name, to_string(row.cls),
                            fmt(row.diff_demand, 3), fmt(row.speedup, 5),
                            fmt(row.bandwidth_base, 2),
                            fmt(row.bandwidth_sc, 2)});
    }
    table.render(std::cout);

    // Correlation between demand-miss reduction and speedup.
    if (rows.size() >= 3) {
        double mx = 0, my = 0;
        for (const auto& r : rows) {
            mx += r.diff_demand;
            my += r.speedup;
        }
        mx /= static_cast<double>(rows.size());
        my /= static_cast<double>(rows.size());
        double sxy = 0, sxx = 0, syy = 0;
        for (const auto& r : rows) {
            sxy += (r.diff_demand - mx) * (r.speedup - my);
            sxx += (r.diff_demand - mx) * (r.diff_demand - mx);
            syy += (r.speedup - my) * (r.speedup - my);
        }
        if (sxx > 0 && syy > 0)
            std::cout << "\nPearson correlation (diff demand vs speedup): "
                      << fmt(sxy / std::sqrt(sxx * syy), 3)
                      << " (paper: strong negative — fewer demand misses, "
                         "higher speedup)\n";
    }

    // §4.4: bandwidth utilisation of the top matrices by speedup.
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        return a.speedup > b.speedup;
    });
    std::cout << "\nTop matrices by speedup (bandwidth utilisation, "
                 "paper: top-speedup matrices stay below ~400 GB/s):\n";
    TextTable bw({"matrix", "speedup", "BW base [GB/s]", "BW sc [GB/s]"});
    const std::size_t top = std::min<std::size_t>(5, rows.size());
    for (std::size_t i = 0; i < top; ++i)
        bw.add_row({rows[i].name, fmt(rows[i].speedup, 3),
                    fmt(rows[i].bandwidth_base, 1),
                    fmt(rows[i].bandwidth_sc, 1)});
    bw.render(std::cout);
    return 0;
}
