// Reproduces Table 3: absolute percentage error of the L2 cache-miss
// prediction for *parallel* SpMV with 48 threads (four shared L2
// segments), matrices larger than the 32 MiB aggregate L2.
//
// Paper shape: accuracy comparable to the sequential case for >= 4 L2
// ways (3-5 %), but *high* error for small sectors (15 % at 2 ways),
// because the model does not see the premature eviction of prefetched
// lines when many threads share a tiny sector (§4.5.3) — the simulator,
// like the hardware, does.
#include "bench_mape.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_table3");
    auto common = parse_common(cli, /*count=*/6, /*scale=*/0.45);
    common.threads = cli.get_int("threads", 48);

    std::cout << "Table 3: absolute percentage error of L2 miss "
                 "prediction, parallel SpMV (" << common.threads
              << " threads)\n";
    return run_mape_bench("MAPE over matrices > 32 MiB:", common,
                          32ull * 1024 * 1024, /*suite_t_min=*/0.65);
}
