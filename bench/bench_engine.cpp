// Raw reuse-distance engine throughput across the three execution modes:
//
//   exact        serial virtual access() and the pre-interleave batched
//                lookahead pipeline (measured by arming the
//                `reuse.interleave` fault, which makes access_batch fall
//                back to the simple loop)
//   interleaved  access_batch's AMAC-style multi-stream probe scheduler
//                (the default batched path; distances stay bit-identical
//                to serial)
//   approx       SampledEngine at R = 0.01 over the interleaved batch
//                path — throughput counted in *input* refs/s, since the
//                model's cost per demand reference is what sampling cuts
//
// The workload is a uniform-random line stream over a footprint large
// enough that the line->node hash map falls out of every cache level, so
// each probe is a dependent DRAM miss in the serial leg — exactly the
// stall the interleaved scheduler hides by keeping N probes in flight.
//
// Emits a perf-trajectory point to BENCH_engine_throughput.json (--out
// overrides the path). --smoke shrinks the stream for CI. The legacy
// "kim"/"olken" keys keep their schema (batched = the interleaved path);
// "interleaved" and "approx" carry the per-mode breakdown.
#include <cstdint>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "reuse/kim.hpp"
#include "reuse/olken.hpp"
#include "reuse/sampled.hpp"
#include "util/fault.hpp"

namespace {

using namespace spmvcache;

/// splitmix64: deterministic, well-mixed 64-bit stream.
std::uint64_t mix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<std::uint64_t> make_stream(std::uint64_t refs,
                                       std::uint64_t distinct_lines,
                                       std::uint64_t seed) {
    std::vector<std::uint64_t> lines;
    lines.reserve(static_cast<std::size_t>(refs));
    std::uint64_t state = seed;
    for (std::uint64_t i = 0; i < refs; ++i)
        lines.push_back(mix64(state) % distinct_lines);
    return lines;
}

constexpr std::size_t kBatch = 1024;

/// One timed access_batch sweep over the stream; returns the distance
/// checksum (kSkippedDistance entries excluded so sampled legs stay
/// summable) and records the wall-clock in `seconds`.
template <class Engine>
std::uint64_t run_batched(Engine& engine,
                          const std::vector<std::uint64_t>& lines,
                          double& seconds) {
    std::vector<std::uint64_t> dists(kBatch);
    std::uint64_t checksum = 0;
    Timer timer;
    for (std::size_t i = 0; i < lines.size(); i += kBatch) {
        const std::size_t n = std::min(kBatch, lines.size() - i);
        engine.access_batch(lines.data() + i, dists.data(), n);
        for (std::size_t k = 0; k < n; ++k)
            if (dists[k] != kSkippedDistance) checksum += dists[k];
    }
    seconds = timer.seconds();
    return checksum;
}

struct Legs {
    double serial_seconds = 0.0;
    double simple_seconds = 0.0;       ///< pre-interleave batched pipeline
    double interleaved_seconds = 0.0;  ///< default access_batch
    double approx_seconds = 0.0;       ///< SampledEngine, input refs/s
    std::uint64_t checksum_serial = 0;
    std::uint64_t checksum_simple = 0;
    std::uint64_t checksum_interleaved = 0;
    std::uint64_t approx_sampled_refs = 0;
};

/// Runs all four legs on fresh engines over the same stream.
template <class Engine, class... Args>
Legs run_legs(const std::vector<std::uint64_t>& lines, double sample_rate,
              Args&&... args) {
    Legs legs;
    {
        Engine engine(args...);
        ReuseEngine& virt = engine;  // force virtual dispatch per access
        Timer timer;
        for (const std::uint64_t line : lines)
            legs.checksum_serial += virt.access(line);
        legs.serial_seconds = timer.seconds();
    }
    {
        // Armed reuse.interleave = access_batch degrades to the simple
        // lookahead loop: this is the pre-interleave exact batched path.
        fault::ScopedFault fallback("reuse.interleave",
                                    {.probability = 1.0, .once = false});
        Engine engine(args...);
        legs.checksum_simple =
            run_batched(engine, lines, legs.simple_seconds);
    }
    {
        Engine engine(args...);
        legs.checksum_interleaved =
            run_batched(engine, lines, legs.interleaved_seconds);
    }
    {
        SampledEngine<Engine> engine(SampleFilter(sample_rate), args...);
        (void)run_batched(engine, lines, legs.approx_seconds);
        legs.approx_sampled_refs = engine.sampled_refs();
    }
    return legs;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_engine");
    const bool smoke = cli.has("smoke");
    // Footprint: distinct lines drive the FlatMap64 size. 1 << 23 lines
    // put the map at ~128 MiB after growth — far beyond L2, so probes
    // miss. Smoke mode stays cache-resident but still exercises the path.
    const std::uint64_t distinct = static_cast<std::uint64_t>(
        cli.get_int("lines", smoke ? (1 << 16) : (1 << 23)));
    const std::uint64_t refs = static_cast<std::uint64_t>(
        cli.get_int("refs", smoke ? (1 << 19) : (1 << 24)));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.get_int("seed", 42));
    const double sample_rate = cli.get_double("sample-rate", 0.01);
    // Wide groups (8 groups over the default footprint) keep Kim's
    // O(#groups) demotion cascade proportionate to the hash and node
    // misses the batched pipeline hides; sub-group distance resolution is
    // unaffected by the batching either way.
    const std::uint64_t kim_groups = static_cast<std::uint64_t>(
        cli.get_int("group-capacity", 1 << 20));

    std::cout << "Engine throughput, " << refs << " refs over " << distinct
              << " distinct lines (serial virtual access() vs batched "
                 "access_batch() vs SHARDS-sampled R="
              << sample_rate << ")\n\n";

    const std::vector<std::uint64_t> lines =
        make_stream(refs, distinct, seed);

    const Legs kim = run_legs<KimEngine>(lines, sample_rate, kim_groups);
    const Legs olken = run_legs<OlkenEngine>(lines, sample_rate, distinct);
    for (const Legs* legs : {&kim, &olken}) {
        if (legs->checksum_serial != legs->checksum_simple ||
            legs->checksum_serial != legs->checksum_interleaved) {
            std::cerr << "FATAL: batched distances differ from serial\n";
            return 1;
        }
    }

    const auto rate = [&](double s) {
        return s > 0 ? static_cast<double>(refs) / s : 0.0;
    };
    const auto speedup = [](double base, double s) {
        return s > 0 ? base / s : 0.0;
    };

    TextTable table({"engine", "serial [Mref/s]", "simple [Mref/s]",
                     "interleaved [Mref/s]", "approx [Mref/s]",
                     "ilv width", "mode", "approx/serial"});
    const auto add_row = [&](const char* name, const Legs& legs,
                             std::size_t width, const char* mode) {
        table.add_row({name, fmt(rate(legs.serial_seconds) / 1e6, 2),
                       fmt(rate(legs.simple_seconds) / 1e6, 2),
                       fmt(rate(legs.interleaved_seconds) / 1e6, 2),
                       fmt(rate(legs.approx_seconds) / 1e6, 2),
                       std::to_string(width), mode,
                       fmt(speedup(legs.serial_seconds,
                                   legs.approx_seconds),
                           1)});
    };
    add_row("kim", kim, KimEngine::interleave_width(),
            KimEngine::batch_mode());
    add_row("olken", olken, OlkenEngine::interleave_width(),
            OlkenEngine::batch_mode());
    table.render(std::cout);
    std::cout << "exact distances identical across serial/simple/"
                 "interleaved legs (checksums match); approx counted in "
                 "input refs/s ("
              << kim.approx_sampled_refs << " kim / "
              << olken.approx_sampled_refs
              << " olken refs survived the filter)\n";

    const std::string out_path =
        cli.get("out", "BENCH_engine_throughput.json");
    std::ofstream out(out_path);
    if (out) {
        const auto engine_json = [&](const Legs& legs, std::size_t width,
                                     const char* mode) {
            std::string s = "{\"serial_refs_per_sec\": " +
                            std::to_string(rate(legs.serial_seconds));
            // The mode best-of calibration shipped for access_batch:
            // "interleaved" only when it beat the simple exact path.
            s += ", \"chosen_mode\": \"" + std::string(mode) + "\"";
            s += ", \"batched_refs_per_sec\": " +
                 std::to_string(rate(legs.interleaved_seconds));
            s += ", \"speedup\": " +
                 std::to_string(speedup(legs.serial_seconds,
                                        legs.interleaved_seconds));
            s += ", \"exact\": {\"simple_refs_per_sec\": " +
                 std::to_string(rate(legs.simple_seconds)) + "}";
            s += ", \"interleaved\": {\"width\": " + std::to_string(width);
            s += ", \"refs_per_sec\": " +
                 std::to_string(rate(legs.interleaved_seconds));
            s += ", \"speedup_vs_simple\": " +
                 std::to_string(speedup(legs.simple_seconds,
                                        legs.interleaved_seconds)) +
                 "}";
            s += ", \"approx\": {\"sample_rate\": " +
                 std::to_string(sample_rate);
            s += ", \"input_refs_per_sec\": " +
                 std::to_string(rate(legs.approx_seconds));
            s += ", \"sampled_refs\": " +
                 std::to_string(legs.approx_sampled_refs);
            s += ", \"speedup_vs_batched\": " +
                 std::to_string(speedup(legs.simple_seconds,
                                        legs.approx_seconds));
            s += ", \"speedup_vs_serial\": " +
                 std::to_string(speedup(legs.serial_seconds,
                                        legs.approx_seconds)) +
                 "}}";
            return s;
        };
        out << "{\"bench\": \"engine_throughput\", \"refs\": " << refs
            << ", \"distinct_lines\": " << distinct
            << ", \"smoke\": " << (smoke ? "true" : "false")
            << ", \"sample_rate\": " << sample_rate << ",\n \"kim\": "
            << engine_json(kim, KimEngine::interleave_width(),
                           KimEngine::batch_mode())
            << ",\n \"olken\": "
            << engine_json(olken, OlkenEngine::interleave_width(),
                           OlkenEngine::batch_mode())
            << "}\n";
        std::cout << "perf point written to " << out_path << "\n";
    } else {
        std::cerr << "cannot write " << out_path << "\n";
    }
    return 0;
}
