// Raw reuse-distance engine throughput: the serial virtual access() path
// versus the batched access_batch() pipeline (devirtualized loop +
// software-prefetched hash probes), for both the Kim and Olken engines.
//
// The workload is a uniform-random line stream over a footprint large
// enough that the line->node hash map falls out of every cache level, so
// each probe is a dependent DRAM miss in the serial leg — exactly the
// stall access_batch() hides by prefetching the probe slots of upcoming
// lines while the current access does its group/tree bookkeeping.
//
// Emits a perf-trajectory point to BENCH_engine_throughput.json (--out
// overrides the path). --smoke shrinks the stream for CI.
#include <cstdint>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "reuse/kim.hpp"
#include "reuse/olken.hpp"

namespace {

using namespace spmvcache;

/// splitmix64: deterministic, well-mixed 64-bit stream.
std::uint64_t mix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<std::uint64_t> make_stream(std::uint64_t refs,
                                       std::uint64_t distinct_lines,
                                       std::uint64_t seed) {
    std::vector<std::uint64_t> lines;
    lines.reserve(static_cast<std::size_t>(refs));
    std::uint64_t state = seed;
    for (std::uint64_t i = 0; i < refs; ++i)
        lines.push_back(mix64(state) % distinct_lines);
    return lines;
}

struct Legs {
    double serial_seconds = 0.0;
    double batch_seconds = 0.0;
    std::uint64_t checksum_serial = 0;
    std::uint64_t checksum_batch = 0;
};

/// Runs both legs on fresh engines over the same stream. The serial leg
/// goes through the virtual interface (the pre-batching model loop); the
/// batched leg uses access_batch in model-sized chunks.
template <class Engine, class... Args>
Legs run_legs(const std::vector<std::uint64_t>& lines, Args&&... args) {
    constexpr std::size_t kBatch = 1024;
    Legs legs;
    {
        Engine engine(args...);
        ReuseEngine& virt = engine;  // force virtual dispatch per access
        Timer timer;
        for (const std::uint64_t line : lines)
            legs.checksum_serial += virt.access(line);
        legs.serial_seconds = timer.seconds();
    }
    {
        Engine engine(args...);
        std::vector<std::uint64_t> dists(kBatch);
        Timer timer;
        for (std::size_t i = 0; i < lines.size(); i += kBatch) {
            const std::size_t n = std::min(kBatch, lines.size() - i);
            engine.access_batch(lines.data() + i, dists.data(), n);
            for (std::size_t k = 0; k < n; ++k)
                legs.checksum_batch += dists[k];
        }
        legs.batch_seconds = timer.seconds();
    }
    return legs;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_engine");
    const bool smoke = cli.has("smoke");
    // Footprint: distinct lines drive the FlatMap64 size. 1 << 23 lines
    // put the map at ~128 MiB after growth — far beyond L2, so probes
    // miss. Smoke mode stays cache-resident but still exercises the path.
    const std::uint64_t distinct = static_cast<std::uint64_t>(
        cli.get_int("lines", smoke ? (1 << 16) : (1 << 23)));
    const std::uint64_t refs = static_cast<std::uint64_t>(
        cli.get_int("refs", smoke ? (1 << 19) : (1 << 24)));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.get_int("seed", 42));
    // Wide groups (8 groups over the default footprint) keep Kim's
    // O(#groups) demotion cascade proportionate to the hash and node
    // misses the batched pipeline hides; sub-group distance resolution is
    // unaffected by the batching either way.
    const std::uint64_t kim_groups = static_cast<std::uint64_t>(
        cli.get_int("group-capacity", 1 << 20));

    std::cout << "Engine throughput, " << refs << " refs over " << distinct
              << " distinct lines (serial virtual access() vs batched "
                 "access_batch())\n\n";

    const std::vector<std::uint64_t> lines =
        make_stream(refs, distinct, seed);

    const Legs kim = run_legs<KimEngine>(lines, kim_groups);
    const Legs olken = run_legs<OlkenEngine>(lines, distinct);
    if (kim.checksum_serial != kim.checksum_batch ||
        olken.checksum_serial != olken.checksum_batch) {
        std::cerr << "FATAL: batched distances differ from serial\n";
        return 1;
    }

    const auto rate = [&](double s) {
        return s > 0 ? static_cast<double>(refs) / s : 0.0;
    };
    const double kim_speedup = kim.batch_seconds > 0
                                   ? kim.serial_seconds / kim.batch_seconds
                                   : 0.0;
    const double olken_speedup =
        olken.batch_seconds > 0 ? olken.serial_seconds / olken.batch_seconds
                                : 0.0;

    TextTable table({"engine", "serial [Mref/s]", "batched [Mref/s]",
                     "speedup"});
    table.add_row({"kim", fmt(rate(kim.serial_seconds) / 1e6, 2),
                   fmt(rate(kim.batch_seconds) / 1e6, 2),
                   fmt(kim_speedup, 2)});
    table.add_row({"olken", fmt(rate(olken.serial_seconds) / 1e6, 2),
                   fmt(rate(olken.batch_seconds) / 1e6, 2),
                   fmt(olken_speedup, 2)});
    table.render(std::cout);
    std::cout << "distances identical across legs (checksums match)\n";

    const std::string out_path =
        cli.get("out", "BENCH_engine_throughput.json");
    std::ofstream out(out_path);
    if (out) {
        out << "{\"bench\": \"engine_throughput\", \"refs\": " << refs
            << ", \"distinct_lines\": " << distinct
            << ", \"smoke\": " << (smoke ? "true" : "false")
            << ",\n \"kim\": {\"serial_refs_per_sec\": "
            << rate(kim.serial_seconds)
            << ", \"batched_refs_per_sec\": " << rate(kim.batch_seconds)
            << ", \"speedup\": " << kim_speedup
            << "},\n \"olken\": {\"serial_refs_per_sec\": "
            << rate(olken.serial_seconds)
            << ", \"batched_refs_per_sec\": " << rate(olken.batch_seconds)
            << ", \"speedup\": " << olken_speedup << "}}\n";
        std::cout << "perf point written to " << out_path << "\n";
    } else {
        std::cerr << "cannot write " << out_path << "\n";
    }
    return 0;
}
