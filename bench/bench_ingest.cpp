// Ingestion benchmark for the `.spmvc` binary cache: serial .mtx parse
// vs chunked-parallel parse vs cached mmap load, over the synthetic suite
// (or --mm DIR). Every leg goes through load_matrix_handle so the three
// numbers measure the same contract — a ready-to-model LoadedMatrix with
// fingerprint and stats attached. Emits a perf-trajectory point to
// BENCH_ingest.json (--out overrides the path); the headline number is
// the parse/cached-load speedup, expected well above 10x. --smoke
// shrinks the suite for CI.
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "bench_common.hpp"
#include "sparse/matrix_market.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;
    namespace fs = std::filesystem;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_ingest");
    const bool smoke = cli.has("smoke");
    const auto common = parse_common(cli, /*count=*/smoke ? 4 : 8,
                                     /*scale=*/smoke ? 0.25 : 0.75);
    const std::int64_t jobs = cli.get_int("jobs", 4);
    const std::int64_t warm_iters =
        cli.get_int("warm-iters", smoke ? 3 : 10);

    // Stage the suite as real .mtx files: ingestion starts at the disk.
    const fs::path work =
        fs::temp_directory_path() /
        ("spmvcache_bench_ingest_" + std::to_string(::getpid()));
    const fs::path cache_dir = work / "cache";
    fs::create_directories(work);

    const auto suite = build_suite(common);
    std::vector<std::string> paths;
    std::uint64_t total_nnz = 0;
    std::uint64_t total_mtx_bytes = 0;
    for (const auto& spec : suite) {
        const CsrMatrix m = spec.factory();
        const std::string path = (work / (spec.name + ".mtx")).string();
        write_matrix_market_file(path, m);
        paths.push_back(path);
        total_nnz += static_cast<std::uint64_t>(m.nnz());
        total_mtx_bytes += static_cast<std::uint64_t>(fs::file_size(path));
    }

    std::cout << "Ingestion: serial parse vs parallel parse (jobs=" << jobs
              << ") vs cached mmap load, " << paths.size()
              << " matrices, " << fmt_bytes(total_mtx_bytes)
              << " of .mtx text\n\n";

    const auto load_seconds = [](const MatrixSource& source) {
        const Timer timer;
        const Result<LoadedMatrix> loaded = load_matrix_handle(source);
        if (!loaded.ok()) {
            std::cerr << "fatal: " << loaded.error().render() << "\n";
            std::exit(2);
        }
        return timer.seconds();
    };

    TextTable table({"matrix", "parse [s]", "par parse [s]", "warm write",
                     "cached [s]", "speedup", "origin ok"});
    double parse_total = 0.0, parallel_total = 0.0, write_total = 0.0,
           cached_total = 0.0;
    bool all_cached = true;
    for (std::size_t n = 0; n < paths.size(); ++n) {
        MatrixSource source;
        source.path = paths[n];

        const double parse_s = load_seconds(source);
        source.parse_jobs = jobs;
        const double parallel_s = load_seconds(source);
        source.parse_jobs = 1;

        // Cold load with the cache enabled: parse + .spmvc write.
        source.cache_dir = cache_dir.string();
        const double write_s = load_seconds(source);

        // Warm loads mmap the entry; best-of so the page cache (the
        // steady state of a repeated-ingestion workload) sets the number.
        double cached_s = 0.0;
        bool cache_hit = true;
        for (std::int64_t i = 0; i < warm_iters; ++i) {
            const Timer timer;
            const Result<LoadedMatrix> loaded =
                load_matrix_handle(source);
            const double s = timer.seconds();
            if (!loaded.ok() ||
                loaded.value().origin != LoadOrigin::CacheHit) {
                cache_hit = false;
                break;
            }
            if (i == 0 || s < cached_s) cached_s = s;
        }
        all_cached = all_cached && cache_hit;

        parse_total += parse_s;
        parallel_total += parallel_s;
        write_total += write_s;
        cached_total += cached_s;
        table.add_row({suite[n].name, fmt(parse_s, 4), fmt(parallel_s, 4),
                       fmt(write_s, 4), fmt(cached_s, 5),
                       fmt(cached_s > 0 ? parse_s / cached_s : 0.0, 1),
                       cache_hit ? "yes" : "NO"});
        std::cerr << suite[n].name << " done\n";
    }
    table.render(std::cout);

    // ---- 64-vs-32 index-width leg: cache footprint + warm-load time ----
    // The suite's matrices all fit 32-bit indices, so the default cache
    // above is narrow. Re-warm a second cache at forced 64-bit and
    // compare bytes on disk and the mmap-load time each width pays.
    const fs::path cache_w64 = work / "cache_w64";
    std::uint64_t bytes_w32 = 0, bytes_w64 = 0;
    double cached_w64_total = 0.0;
    for (const auto& path : paths) {
        MatrixSource source;
        source.path = path;
        source.cache_dir = cache_w64.string();
        source.index_width = IndexWidthChoice::W64;
        (void)load_seconds(source);  // cold: parse + wide write
        double best = 0.0;
        for (std::int64_t i = 0; i < warm_iters; ++i) {
            const double s = load_seconds(source);
            if (i == 0 || s < best) best = s;
        }
        cached_w64_total += best;
    }
    for (const fs::path& dir : {cache_dir, cache_w64}) {
        std::uint64_t& total = (dir == cache_w64) ? bytes_w64 : bytes_w32;
        for (const auto& e : fs::directory_iterator(dir))
            if (e.path().extension() == ".spmvc")
                total += static_cast<std::uint64_t>(
                    fs::file_size(e.path()));
    }
    const double size_ratio =
        bytes_w64 > 0 ? static_cast<double>(bytes_w32) /
                            static_cast<double>(bytes_w64)
                      : 0.0;
    std::cout << "index width: .spmvc total " << fmt_bytes(bytes_w32)
              << " (32-bit) vs " << fmt_bytes(bytes_w64)
              << " (64-bit) -> " << fmt(size_ratio, 2)
              << "x; warm load " << fmt(cached_total, 4) << " s vs "
              << fmt(cached_w64_total, 4) << " s\n";

    const double speedup =
        cached_total > 0 ? parse_total / cached_total : 0.0;
    const double parallel_speedup =
        parallel_total > 0 ? parse_total / parallel_total : 0.0;
    std::cout << "total: parse " << fmt(parse_total, 3) << " s, parallel "
              << fmt(parallel_total, 3) << " s ("
              << fmt(parallel_speedup, 2) << "x), cache write "
              << fmt(write_total, 3) << " s, cached load "
              << fmt(cached_total, 4) << " s -> "
              << fmt(speedup, 1) << "x over parse\n";
    if (!all_cached)
        std::cout << "WARNING: some warm loads missed the cache\n";

    const std::string out_path = cli.get("out", "BENCH_ingest.json");
    std::ofstream out(out_path);
    if (out) {
        out << "{\"bench\": \"ingest\", \"smoke\": "
            << (smoke ? "true" : "false")
            << ", \"matrices\": " << paths.size()
            << ", \"total_nnz\": " << total_nnz
            << ", \"mtx_bytes\": " << total_mtx_bytes
            << ", \"parse_jobs\": " << jobs
            << ", \"parse_seconds\": " << parse_total
            << ", \"parallel_parse_seconds\": " << parallel_total
            << ", \"parallel_parse_speedup\": " << parallel_speedup
            << ", \"cache_write_seconds\": " << write_total
            << ", \"cached_load_seconds\": " << cached_total
            << ", \"cached_speedup\": " << speedup
            << ", \"all_cache_hits\": " << (all_cached ? "true" : "false")
            << ",\n \"index_width\": {\"spmvc_bytes_w32\": " << bytes_w32
            << ", \"spmvc_bytes_w64\": " << bytes_w64
            << ", \"size_ratio\": " << size_ratio
            << ", \"cached_load_seconds_w32\": " << cached_total
            << ", \"cached_load_seconds_w64\": " << cached_w64_total
            << "}}\n";
        std::cout << "perf point written to " << out_path << "\n";
    } else {
        std::cerr << "cannot write " << out_path << "\n";
    }

    std::error_code ec;
    fs::remove_all(work, ec);
    return all_cached && speedup >= 1.0 ? 0 : 1;
}
