// Kernel engine throughput: every KernelVariant against the
// spmv_csr_parallel baseline, swept over generator matrix classes and
// team sizes, with an in-process STREAM-triad roof measured on the same
// WorkerTeam so the table reads as a roofline ("how much of the machine's
// streaming bandwidth does each SpMV variant reach").
//
// Every variant is verified against the sequential spmv_csr kernel before
// it is timed: CsrScalar and CsrPrefetch must match bit-for-bit (they
// keep Listing 1's accumulation order); the SIMD, SELL and merge variants
// reorder the per-row sums, so they are held to a tight relative
// tolerance instead.
//
// Emits BENCH_spmv_kernel.json (--out overrides). --smoke shrinks
// matrices and iteration counts for CI.
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/engine.hpp"
#include "kernels/spmv.hpp"
#include "sparse/binary_cache.hpp"
#include "sparse/fingerprint.hpp"
#include "sparse/gen/banded.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/matrix_stats.hpp"
#include "sync/worker_team.hpp"
#include "util/prng.hpp"

namespace {

using namespace spmvcache;

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<double> v(n);
    for (auto& x : v) x = rng.uniform() * 2.0 - 1.0;
    return v;
}

/// Bytes one y += A x iteration must move at minimum (compulsory traffic,
/// perfect x reuse): values + colidx streams, rowptr, one read of x, and
/// a read-modify-write of y.
double spmv_bytes(const CsrMatrix& a) {
    return 12.0 * static_cast<double>(a.nnz()) +
           8.0 * static_cast<double>(a.rows() + 1) +
           8.0 * static_cast<double>(a.cols()) +
           16.0 * static_cast<double>(a.rows());
}

/// STREAM triad (a = b + s*c) on `threads` WorkerTeam workers — the same
/// execution substrate as the engine, so the roof is what *this* process
/// can stream, not a spec-sheet number. Returns GB/s.
double stream_triad_roof(std::int64_t threads, std::size_t n, int reps) {
    std::vector<double> a(n, 0.0);
    std::vector<double> b(n, 1.0);
    std::vector<double> c(n, 2.0);
    const double scalar = 3.0;
    const auto run_slice = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            a[i] = b[i] + scalar * c[i];
    };
    double seconds = 0.0;
    if (threads <= 1) {
        run_slice(0, n);  // warm-up / first touch
        Timer timer;
        for (int r = 0; r < reps; ++r) run_slice(0, n);
        seconds = timer.seconds();
    } else {
        WorkerTeam team(static_cast<std::size_t>(threads));
        const std::size_t slice =
            (n + static_cast<std::size_t>(threads) - 1) /
            static_cast<std::size_t>(threads);
        team.run([&](std::size_t t) {
            run_slice(std::min(t * slice, n), std::min((t + 1) * slice, n));
        });
        Timer timer;
        team.run([&](std::size_t t) {
            const std::size_t begin = std::min(t * slice, n);
            const std::size_t end = std::min((t + 1) * slice, n);
            for (int r = 0; r < reps; ++r) run_slice(begin, end);
        });
        seconds = timer.seconds();
    }
    const double bytes = 24.0 * static_cast<double>(n) *
                         static_cast<double>(reps);
    return seconds > 0 ? bytes / seconds / 1e9 : 0.0;
}

enum class Verify { Bitwise, Tolerance };

/// Compares an engine run against sequential spmv_csr from the same seed
/// vectors. Returns an empty string on success, a diagnostic otherwise.
std::string verify_variant(const CsrMatrix& a, KernelEngine& engine,
                           Verify mode) {
    const auto x = random_vector(static_cast<std::size_t>(a.cols()), 7);
    const auto y0 = random_vector(static_cast<std::size_t>(a.rows()), 11);
    std::vector<double> y_ref = y0;
    spmv_csr(a, x, y_ref);
    std::vector<double> y_eng = y0;
    engine.run(x, y_eng);
    for (std::size_t r = 0; r < y_ref.size(); ++r) {
        if (mode == Verify::Bitwise) {
            if (std::memcmp(&y_ref[r], &y_eng[r], sizeof(double)) != 0)
                return "row " + std::to_string(r) + ": " +
                       std::to_string(y_eng[r]) + " != " +
                       std::to_string(y_ref[r]) + " (bitwise)";
        } else {
            const double denom = std::max(std::abs(y_ref[r]), 1.0);
            if (std::abs(y_eng[r] - y_ref[r]) / denom > 1e-10)
                return "row " + std::to_string(r) + ": " +
                       std::to_string(y_eng[r]) + " vs " +
                       std::to_string(y_ref[r]) + " (tol)";
        }
    }
    return {};
}

struct VariantResult {
    KernelVariant variant = KernelVariant::CsrScalar;
    std::int64_t threads = 1;
    double gflops = 0.0;
    double gbytes = 0.0;
    double speedup = 0.0;  ///< vs spmv_csr_parallel at same thread count
    EngineInfo info;
};

struct MatrixResult {
    std::string name;
    std::int64_t rows = 0;
    std::int64_t nnz = 0;
    std::vector<VariantResult> variants;
    std::vector<double> baseline_gflops;  ///< per thread count
    double best_speedup = 0.0;
    std::string best_label;
};

/// The 64-vs-32 index-width leg: same matrix, same kernel variant, both
/// physical widths, plus the .spmvc cache-entry footprint each width
/// pays on disk.
struct WidthResult {
    std::string name;
    std::int64_t rows = 0;
    std::int64_t nnz = 0;
    double gflops_w32 = 0.0;
    double gflops_w64 = 0.0;
    double speedup_32_over_64 = 0.0;
    std::uint64_t spmvc_bytes_w32 = 0;
    std::uint64_t spmvc_bytes_w64 = 0;
    double size_ratio = 0.0;  ///< w32 bytes / w64 bytes
};

/// Times `iters` products on an engine built over `view` at its physical
/// width; returns GFLOP/s.
template <class Engine, class View>
double time_width_leg(const View& view, const EngineOptions& options,
                      std::int64_t iters, std::span<const double> x,
                      std::span<double> y) {
    Engine engine(view, options);
    engine.run_iterations(x, y, 1);  // warm-up
    Timer timer;
    engine.run_iterations(x, y, iters);
    const double seconds = timer.seconds();
    const double flops = 2.0 * static_cast<double>(view.nnz()) *
                         static_cast<double>(iters);
    return seconds > 0 ? flops / seconds / 1e9 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    std::cout << "# bench_spmv [--smoke] [--iters N] [--threads T]"
                 " [--out FILE]\n";
    const bool smoke = cli.has("smoke");
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.get_int("seed", 42));

    // Matrix classes: best-case x locality (stencil), banded FEM-like,
    // worst-case x locality (uniform random), and a row-imbalanced class
    // for the merge variant.
    struct Case {
        const char* name;
        CsrMatrix matrix;
    };
    const std::int64_t g = smoke ? 96 : 1024;       // stencil grid edge
    const std::int64_t nb = smoke ? 20000 : 400000;  // banded rows
    const std::int64_t nr = smoke ? 10000 : 200000;  // random rows
    std::vector<Case> cases;
    cases.push_back({"stencil2d5", gen::stencil_2d_5pt(g, g)});
    cases.push_back({"banded", gen::banded(nb, 16, 256, seed)});
    cases.push_back({"random", gen::random_uniform(nr, nr, 16, seed)});
    cases.push_back(
        {"imbalanced", gen::random_variable_rows(nr, nr, 16.0, 2.0, seed)});

    std::vector<std::int64_t> thread_counts = {1};
    const std::int64_t max_threads = cli.get_int("threads", 2);
    for (std::int64_t t = 2; t <= max_threads; t *= 2)
        thread_counts.push_back(t);

    static constexpr KernelVariant kVariants[] = {
        KernelVariant::CsrScalar,   KernelVariant::CsrPrefetch,
        KernelVariant::CsrSimd,     KernelVariant::SellScalar,
        KernelVariant::SellSimd,    KernelVariant::CsrMerge,
    };

    std::cout << "host SIMD: " << simd::to_string(simd::best().isa)
              << "\n\n";

    // The roof per team size, shared across matrices.
    const std::size_t triad_n = smoke ? (std::size_t{1} << 20)
                                      : (std::size_t{1} << 25);
    std::vector<double> roofs;
    for (const std::int64_t t : thread_counts)
        roofs.push_back(stream_triad_roof(t, triad_n, smoke ? 3 : 10));

    std::vector<MatrixResult> results;
    bool all_verified = true;
    double overall_best = 0.0;
    std::string overall_label;

    for (const auto& c : cases) {
        const CsrMatrix& a = c.matrix;
        MatrixResult mr;
        mr.name = c.name;
        mr.rows = a.rows();
        mr.nnz = a.nnz();
        const std::int64_t iters =
            smoke ? 3
                  : std::max<std::int64_t>(
                        5, (std::int64_t{1} << 28) / std::max<std::int64_t>(
                                                         a.nnz(), 1));
        const double flops_per_iter = 2.0 * static_cast<double>(a.nnz());
        const auto x = random_vector(static_cast<std::size_t>(a.cols()),
                                     seed);
        std::vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);

        TextTable table({"variant", "threads", "GFLOP/s", "GB/s",
                         "% roof", "vs baseline", "note"});

        for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
            const std::int64_t threads = thread_counts[ti];
            // Baseline: the public spmv_csr_parallel entry point (scalar
            // engine per call, setup included — what callers got before
            // engines were reusable).
            const RowPartition partition(a, threads,
                                         PartitionPolicy::BalancedNonzeros);
            Timer base_timer;
            for (std::int64_t i = 0; i < iters; ++i)
                spmv_csr_parallel(a, x, y, partition);
            const double base_seconds = base_timer.seconds();
            const double base_gflops =
                base_seconds > 0 ? flops_per_iter *
                                       static_cast<double>(iters) /
                                       base_seconds / 1e9
                                 : 0.0;
            mr.baseline_gflops.push_back(base_gflops);
            // GB/s from GFLOP/s: bytes moved per flop pair is bytes/2nnz.
            const double base_gbytes = base_gflops * spmv_bytes(a) /
                                       (2.0 * static_cast<double>(a.nnz()));
            table.add_row({"spmv_csr_parallel", std::to_string(threads),
                           fmt(base_gflops, 2), fmt(base_gbytes, 2),
                           fmt(base_gbytes / std::max(roofs[ti], 1e-9) *
                                   100.0,
                               1),
                           "1.00", "baseline"});

            for (const KernelVariant v : kVariants) {
                EngineOptions options;
                options.threads = threads;
                options.variant = v;
                KernelEngine engine(a, options);

                const Verify mode = (v == KernelVariant::CsrScalar ||
                                     v == KernelVariant::CsrPrefetch)
                                        ? Verify::Bitwise
                                        : Verify::Tolerance;
                const std::string err = verify_variant(a, engine, mode);
                if (!err.empty()) {
                    all_verified = false;
                    std::cerr << "VERIFY FAILED " << c.name << "/"
                              << to_string(v) << " t=" << threads << ": "
                              << err << "\n";
                    continue;
                }

                engine.run_iterations(x, y, 1);  // warm-up
                Timer timer;
                engine.run_iterations(x, y, iters);
                const double seconds = timer.seconds();
                VariantResult vr;
                vr.variant = v;
                vr.threads = threads;
                vr.info = engine.info();
                vr.gflops = seconds > 0
                                ? flops_per_iter *
                                      static_cast<double>(iters) / seconds /
                                      1e9
                                : 0.0;
                vr.gbytes = seconds > 0
                                ? spmv_bytes(a) *
                                      static_cast<double>(iters) / seconds /
                                      1e9
                                : 0.0;
                vr.speedup =
                    base_gflops > 0 ? vr.gflops / base_gflops : 0.0;
                mr.variants.push_back(vr);

                std::string note;
                if (v == KernelVariant::CsrPrefetch)
                    note = "d=" +
                           std::to_string(vr.info.prefetch_distance);
                else if (v == KernelVariant::CsrSimd ||
                         v == KernelVariant::SellSimd)
                    note = simd::to_string(vr.info.isa);
                if (v == KernelVariant::SellScalar ||
                    v == KernelVariant::SellSimd)
                    note += (note.empty() ? "beta=" : " beta=") +
                            fmt(vr.info.sell_padding, 2);
                table.add_row({to_string(v), std::to_string(threads),
                               fmt(vr.gflops, 2), fmt(vr.gbytes, 2),
                               fmt(vr.gbytes /
                                       std::max(roofs[ti], 1e-9) * 100.0,
                                   1),
                               fmt(vr.speedup, 2), note});
                if (vr.speedup > mr.best_speedup) {
                    mr.best_speedup = vr.speedup;
                    mr.best_label = std::string(to_string(v)) + " t=" +
                                    std::to_string(threads);
                }
            }
        }

        std::cout << c.name << ": " << a.rows() << " rows, " << a.nnz()
                  << " nnz, " << iters << " iters (triad roof";
        for (std::size_t ti = 0; ti < roofs.size(); ++ti)
            std::cout << (ti == 0 ? " " : " / ") << fmt(roofs[ti], 1)
                      << " GB/s @t" << thread_counts[ti];
        std::cout << ")\n";
        table.render(std::cout);
        std::cout << "best: " << mr.best_label << " at "
                  << fmt(mr.best_speedup, 2) << "x baseline\n\n";
        if (mr.best_speedup > overall_best) {
            overall_best = mr.best_speedup;
            overall_label = mr.name + "/" + mr.best_label;
        }
        results.push_back(std::move(mr));
    }

    std::cout << (all_verified
                      ? "all variants match the sequential kernel\n"
                      : "VERIFICATION FAILURES (see stderr)\n");
    std::cout << "best overall: " << overall_label << " at "
              << fmt(overall_best, 2) << "x spmv_csr_parallel\n";

    const std::string out_path = cli.get("out", "BENCH_spmv_kernel.json");
    std::ofstream out(out_path);
    if (out) {
        out << "{\"bench\": \"spmv_kernel\", \"smoke\": "
            << (smoke ? "true" : "false") << ", \"simd\": \""
            << simd::to_string(simd::best().isa) << "\",\n \"triad_roof\": [";
        for (std::size_t ti = 0; ti < roofs.size(); ++ti)
            out << (ti ? ", " : "") << "{\"threads\": " << thread_counts[ti]
                << ", \"gbytes_per_sec\": " << roofs[ti] << "}";
        out << "],\n \"verified\": " << (all_verified ? "true" : "false")
            << ", \"best_speedup\": " << overall_best << ",\n"
            << " \"matrices\": [\n";
        for (std::size_t m = 0; m < results.size(); ++m) {
            const MatrixResult& mr = results[m];
            out << "  {\"name\": \"" << mr.name << "\", \"rows\": "
                << mr.rows << ", \"nnz\": " << mr.nnz
                << ", \"best_speedup\": " << mr.best_speedup
                << ", \"best\": \"" << mr.best_label << "\",\n"
                << "   \"baseline_gflops\": [";
            for (std::size_t ti = 0; ti < mr.baseline_gflops.size(); ++ti)
                out << (ti ? ", " : "") << mr.baseline_gflops[ti];
            out << "],\n   \"variants\": [\n";
            for (std::size_t v = 0; v < mr.variants.size(); ++v) {
                const VariantResult& vr = mr.variants[v];
                out << "    {\"variant\": \"" << to_string(vr.variant)
                    << "\", \"threads\": " << vr.threads
                    << ", \"gflops\": " << vr.gflops
                    << ", \"gbytes_per_sec\": " << vr.gbytes
                    << ", \"speedup\": " << vr.speedup
                    << ", \"isa\": \"" << simd::to_string(vr.info.isa)
                    << "\", \"prefetch_distance\": "
                    << vr.info.prefetch_distance << "}"
                    << (v + 1 < mr.variants.size() ? "," : "") << "\n";
            }
            out << "   ]}" << (m + 1 < results.size() ? "," : "") << "\n";
        }
        out << " ]}\n";
        std::cout << "perf point written to " << out_path << "\n";
    } else {
        std::cerr << "cannot write " << out_path << "\n";
    }

    // ---- 64-vs-32 index-width leg -------------------------------------
    // Same matrix, same kernel variant (the SIMD CSR kernel — it streams
    // colidx hardest), both physical widths, at the largest team size.
    // The .spmvc footprint of each width rides along so one JSON carries
    // both halves of the narrow-index claim: faster SpMV, smaller cache.
    namespace fs = std::filesystem;
    const fs::path width_work =
        fs::temp_directory_path() /
        ("spmvcache_bench_width_" + std::to_string(::getpid()));
    fs::create_directories(width_work);

    const std::int64_t width_threads = thread_counts.back();
    std::vector<WidthResult> width_results;
    TextTable width_table({"matrix", "w32 GFLOP/s", "w64 GFLOP/s",
                           "32/64", "w32 .spmvc", "w64 .spmvc", "size"});
    for (const auto& c : cases) {
        const CsrMatrix& a32 = c.matrix;
        const CsrMatrix64 a64 = convert_csr_width<Idx64>(CsrView(a32));
        const std::int64_t iters =
            smoke ? 3
                  : std::max<std::int64_t>(
                        5, (std::int64_t{1} << 28) /
                               std::max<std::int64_t>(a32.nnz(), 1));
        const auto x = random_vector(static_cast<std::size_t>(a32.cols()),
                                     seed);
        std::vector<double> y(static_cast<std::size_t>(a32.rows()), 0.0);

        EngineOptions options;
        options.threads = width_threads;
        options.variant = KernelVariant::CsrSimd;

        WidthResult wr;
        wr.name = c.name;
        wr.rows = a32.rows();
        wr.nnz = a32.nnz();
        wr.gflops_w32 = time_width_leg<KernelEngine>(
            CsrView(a32), options, iters, x, std::span<double>(y));
        wr.gflops_w64 = time_width_leg<KernelEngine64>(
            CsrView64(a64), options, iters, x, std::span<double>(y));
        wr.speedup_32_over_64 =
            wr.gflops_w64 > 0 ? wr.gflops_w32 / wr.gflops_w64 : 0.0;

        const auto entry_bytes = [&](const auto& m,
                                     const char* tag) -> std::uint64_t {
            const std::string path =
                (width_work / (c.name + std::string(".") + tag + ".spmvc"))
                    .string();
            const Status written = write_binary_cache(
                path, m, fingerprint_matrix(m), compute_stats(m),
                "bench://" + std::string(c.name), SourceStamp{});
            if (!written.ok()) return 0;
            return static_cast<std::uint64_t>(fs::file_size(path));
        };
        wr.spmvc_bytes_w32 = entry_bytes(CsrView(a32), "w32");
        wr.spmvc_bytes_w64 = entry_bytes(CsrView64(a64), "w64");
        wr.size_ratio =
            wr.spmvc_bytes_w64 > 0
                ? static_cast<double>(wr.spmvc_bytes_w32) /
                      static_cast<double>(wr.spmvc_bytes_w64)
                : 0.0;

        width_table.add_row({wr.name, fmt(wr.gflops_w32, 2),
                             fmt(wr.gflops_w64, 2),
                             fmt(wr.speedup_32_over_64, 2),
                             fmt_bytes(wr.spmvc_bytes_w32),
                             fmt_bytes(wr.spmvc_bytes_w64),
                             fmt(wr.size_ratio, 2)});
        width_results.push_back(std::move(wr));
    }
    std::cout << "\nindex width: csr-simd at t=" << width_threads
              << ", 32-bit vs 64-bit colidx/rowptr\n";
    width_table.render(std::cout);

    const std::string width_out =
        cli.get("width-out", "BENCH_index_width.json");
    std::ofstream wout(width_out);
    if (wout) {
        wout << "{\"bench\": \"index_width\", \"smoke\": "
             << (smoke ? "true" : "false")
             << ", \"variant\": \"csr-simd\", \"threads\": "
             << width_threads << ", \"simd\": \""
             << simd::to_string(simd::best().isa) << "\",\n \"matrices\": [\n";
        for (std::size_t i = 0; i < width_results.size(); ++i) {
            const WidthResult& wr = width_results[i];
            wout << "  {\"name\": \"" << wr.name << "\", \"rows\": "
                 << wr.rows << ", \"nnz\": " << wr.nnz
                 << ", \"gflops_w32\": " << wr.gflops_w32
                 << ", \"gflops_w64\": " << wr.gflops_w64
                 << ", \"speedup_32_over_64\": " << wr.speedup_32_over_64
                 << ", \"spmvc_bytes_w32\": " << wr.spmvc_bytes_w32
                 << ", \"spmvc_bytes_w64\": " << wr.spmvc_bytes_w64
                 << ", \"size_ratio\": " << wr.size_ratio << "}"
                 << (i + 1 < width_results.size() ? "," : "") << "\n";
        }
        wout << " ]}\n";
        std::cout << "width comparison written to " << width_out << "\n";
    } else {
        std::cerr << "cannot write " << width_out << "\n";
    }
    std::error_code ec;
    fs::remove_all(width_work, ec);
    return all_verified ? 0 : 1;
}
