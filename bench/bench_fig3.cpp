// Reproduces Fig. 3: distributions of SpMV speedup (or slowdown) over the
// no-sector-cache baseline for sector configurations L2 ways 2-6 x L1 ways
// {none, 1, 2}, with 48 threads.
//
// Paper shape: best at 5 L2 ways with L1 off (>= 75% of matrices at or
// above 1.0x, upper quartile ~1.1x, max ~1.6x); enabling L1 ways degrades
// performance, down to 0.2x at 3 L1 ways.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_fig3");
    const auto common = parse_common(cli, /*count=*/8, /*scale=*/0.28);

    std::cout << "Fig. 3: speedup over no-sector-cache baseline, "
              << common.threads << " threads\n\n";

    std::vector<SectorWays> configs{SectorWays{0, 0}};
    for (std::uint32_t l2 = 2; l2 <= 6; ++l2)
        for (const std::uint32_t l1 : {0u, 1u, 2u})
            configs.push_back(SectorWays{l2, l1});

    const auto suite = build_suite(common, /*t_min=*/0.5);
    const auto options = experiment_options(common);

    const std::function<std::vector<double>(const std::string&,
                                            const CsrMatrix&)>
        exp_fn = [&](const std::string&, const CsrMatrix& m) {
            const auto results = run_sector_sweep(m, configs, options);
            std::vector<double> speedups;
            speedups.reserve(configs.size() - 1);
            for (std::size_t c = 1; c < configs.size(); ++c)
                speedups.push_back(results[c].speedup_over(results[0]));
            return speedups;
        };
    CollectionOptions copts;
    copts.verbose = true;
    copts.host_threads = common.host_threads;
    const auto outcomes =
        run_collection<std::vector<double>>(suite, exp_fn, copts);

    TextTable table(boxplot_headers("config (L2 ways / L1 ways)"));
    std::unique_ptr<CsvWriter> csv;
    if (!common.csv_path.empty())
        csv = std::make_unique<CsvWriter>(
            common.csv_path, std::vector<std::string>{"l2_ways", "l1_ways",
                                                      "matrix", "speedup"});
    double best_median = 0.0;
    SectorWays best_config{};
    for (std::size_t c = 1; c < configs.size(); ++c) {
        std::vector<double> speedups;
        for (const auto& o : outcomes) {
            if (!o.ok || o.result.empty()) continue;
            speedups.push_back(o.result[c - 1]);
            if (csv)
                csv->write_row({std::to_string(configs[c].l2),
                                std::to_string(configs[c].l1), o.name,
                                fmt(o.result[c - 1], 5)});
        }
        if (speedups.empty()) continue;
        const std::string label =
            "L2=" + std::to_string(configs[c].l2) + " L1=" +
            (configs[c].l1 == 0 ? "none" : std::to_string(configs[c].l1));
        table.add_row(boxplot_row(label, speedups, 3));
        const double med = median(speedups);
        if (med > best_median) {
            best_median = med;
            best_config = configs[c];
        }
    }
    table.render(std::cout);
    std::cout << "\nBest median speedup: " << fmt(best_median, 3) << "x at L2="
              << best_config.l2 << " L1="
              << (best_config.l1 == 0 ? std::string("none")
                                      : std::to_string(best_config.l1))
              << " (paper: ~1.05x median, best overall at 5 L2 ways, L1 "
                 "off)\n";
    return 0;
}
