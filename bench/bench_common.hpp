// Shared plumbing for the bench harnesses: common CLI options, suite
// construction (synthetic by default, --mm <dir> for real SuiteSparse
// files), and output helpers. Every harness prints the rows of its paper
// artifact; --csv dumps the raw per-matrix data for external plotting.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/spmvcache.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace spmvcache::bench {

/// Options common to all harnesses.
struct CommonOptions {
    std::int64_t count = 12;     ///< matrices in the synthetic suite
    double scale = 0.5;          ///< dimension multiplier for the suite
    std::int64_t threads = 48;   ///< simulated threads
    std::uint64_t seed = 42;
    std::string mm_dir;          ///< directory of .mtx files (optional)
    std::string csv_path;        ///< raw data dump (optional)
    bool verbose = false;
    std::int64_t host_threads = 1;
};

inline CommonOptions parse_common(const CliParser& cli,
                                  std::int64_t default_count,
                                  double default_scale) {
    CommonOptions o;
    o.count = cli.get_int("count", default_count);
    o.scale = cli.get_double("scale", default_scale);
    o.threads = cli.get_int("threads", 48);
    o.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    o.mm_dir = cli.get("mm", "");
    o.csv_path = cli.get("csv", "");
    o.verbose = cli.get_bool("verbose", false);
    o.host_threads = cli.get_int("host-threads", 1);
    return o;
}

inline void print_usage_hint(const char* name) {
    std::cout << "# " << name
              << " [--count N] [--scale F] [--threads T] [--seed S]"
                 " [--mm DIR] [--csv FILE] [--verbose]\n";
}

/// Builds the matrix collection: real .mtx files if --mm was given,
/// otherwise the synthetic suite. `t_min` drops the small end of each
/// generator family (see SuiteOptions::t_min).
inline std::vector<gen::MatrixSpec> build_suite(const CommonOptions& o,
                                                double t_min = 0.0) {
    if (!o.mm_dir.empty()) return gen::matrix_market_suite(o.mm_dir);
    gen::SuiteOptions suite;
    suite.count = o.count;
    suite.scale = o.scale;
    suite.t_min = t_min;
    suite.seed = o.seed;
    return gen::synthetic_suite(suite);
}

/// Standard experiment options on the default (full A64FX) machine.
inline ExperimentOptions experiment_options(const CommonOptions& o) {
    ExperimentOptions e;
    e.machine = a64fx_default();
    e.threads = o.threads;
    return e;
}

/// Renders one boxplot distribution as a table row: the quantities Fig. 2
/// and Fig. 3 display (quartiles, median, whiskers, outlier count).
inline std::vector<std::string> boxplot_row(const std::string& label,
                                            std::span<const double> data,
                                            int precision = 2) {
    const auto box = boxplot(data);
    return {label,
            fmt(box.whisker_lo, precision),
            fmt(box.q1, precision),
            fmt(box.median, precision),
            fmt(box.q3, precision),
            fmt(box.whisker_hi, precision),
            std::to_string(box.outliers.size()),
            fmt(box.mean, precision)};
}

inline std::vector<std::string> boxplot_headers(const std::string& first) {
    return {first, "whisk_lo", "q1", "median", "q3", "whisk_hi",
            "outliers", "mean"};
}

}  // namespace spmvcache::bench
