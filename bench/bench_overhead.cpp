// Reproduces §4.5.1: the runtime overhead of method (A) relative to
// method (B) (paper: 4.21x sequential, 3.02x with 48 threads; average
// method (B) runtime 6.54 s / 9.22 s at paper scale), plus a comparison
// of the Olken and Kim stack-processing engines inside method (A).
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_overhead");
    const auto common = parse_common(cli, /*count=*/4, /*scale=*/0.3);

    std::cout << "Model runtime overhead t_A / t_B (paper §4.5.1: 4.21x at "
                 "1 thread, 3.02x at 48 threads)\n\n";

    const auto suite = build_suite(common);
    TextTable table({"matrix", "threads", "t_A [s]", "t_A(Kim) [s]",
                     "t_B [s]", "t_A/t_B"});

    for (const std::int64_t threads : {std::int64_t{1}, common.threads}) {
        double total_a = 0.0, total_b = 0.0;
        for (const auto& spec : suite) {
            const CsrMatrix m = spec.factory();
            ModelOptions options;
            options.machine = a64fx_default();
            options.threads = threads;
            options.predict_l1 = false;
            const auto a = run_method_a(m, options);
            const auto a_kim = run_method_a(m, options, EngineKind::Kim);
            const auto b = run_method_b(m, options);
            total_a += a.seconds;
            total_b += b.seconds;
            table.add_row({spec.name, std::to_string(threads),
                           fmt(a.seconds, 3), fmt(a_kim.seconds, 3),
                           fmt(b.seconds, 3),
                           fmt(b.seconds > 0 ? a.seconds / b.seconds : 0.0,
                               2)});
            std::cerr << spec.name << " @" << threads << " threads done\n";
        }
        std::cout << "threads=" << threads << ": total t_A " << fmt(total_a, 2)
                  << " s, total t_B " << fmt(total_b, 2) << " s, ratio "
                  << fmt(total_b > 0 ? total_a / total_b : 0.0, 2) << "x\n";
    }
    std::cout << '\n';
    table.render(std::cout);
    return 0;
}
