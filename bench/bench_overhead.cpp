// Reproduces §4.5.1: the runtime overhead of method (A) relative to
// method (B) (paper: 4.21x sequential, 3.02x with 48 threads; average
// method (B) runtime 6.54 s / 9.22 s at paper scale), plus a comparison
// of the Olken and Kim stack-processing engines inside method (A), plus
// the serial-vs-parallel wall-clock of the host-sharded model (--jobs);
// the latter is emitted as a perf-trajectory point to
// BENCH_model_parallel.json (--out overrides the path).
#include <fstream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_overhead");
    const auto common = parse_common(cli, /*count=*/4, /*scale=*/0.3);

    std::cout << "Model runtime overhead t_A / t_B (paper §4.5.1: 4.21x at "
                 "1 thread, 3.02x at 48 threads)\n\n";

    const auto suite = build_suite(common);
    TextTable table({"matrix", "threads", "t_A [s]", "t_A(Kim) [s]",
                     "t_B [s]", "t_A/t_B"});

    for (const std::int64_t threads : {std::int64_t{1}, common.threads}) {
        double total_a = 0.0, total_b = 0.0;
        for (const auto& spec : suite) {
            const CsrMatrix m = spec.factory();
            ModelOptions options;
            options.machine = a64fx_default();
            options.threads = threads;
            options.predict_l1 = false;
            const auto a = run_method_a(m, options);
            const auto a_kim = run_method_a(m, options, EngineKind::Kim);
            const auto b = run_method_b(m, options);
            total_a += a.seconds;
            total_b += b.seconds;
            table.add_row({spec.name, std::to_string(threads),
                           fmt(a.seconds, 3), fmt(a_kim.seconds, 3),
                           fmt(b.seconds, 3),
                           fmt(b.seconds > 0 ? a.seconds / b.seconds : 0.0,
                               2)});
            std::cerr << spec.name << " @" << threads << " threads done\n";
        }
        std::cout << "threads=" << threads << ": total t_A " << fmt(total_a, 2)
                  << " s, total t_B " << fmt(total_b, 2) << " s, ratio "
                  << fmt(total_b > 0 ? total_a / total_b : 0.0, 2) << "x\n";
    }
    std::cout << '\n';
    table.render(std::cout);

    // ---- Host-parallel sharded execution: serial vs --jobs J -------------
    // Same predictions by construction (the differential suite asserts
    // bit-identity); only the wall-clock should move.
    const std::int64_t par_jobs = cli.get_int("jobs", 4);
    std::cout << "\nSharded method (A), " << common.threads
              << " simulated threads: jobs=1 vs jobs=" << par_jobs << "\n";
    TextTable par_table(
        {"matrix", "shards", "t serial [s]", "t parallel [s]", "speedup"});
    double serial_total = 0.0, parallel_total = 0.0;
    std::size_t matrices = 0;
    for (const auto& spec : suite) {
        const CsrMatrix m = spec.factory();
        ModelOptions options;
        options.machine = a64fx_default();
        options.threads = common.threads;
        options.predict_l1 = false;
        options.jobs = 1;
        const auto serial = run_method_a(m, options);
        options.jobs = par_jobs;
        const auto parallel = run_method_a(m, options);
        serial_total += serial.seconds;
        parallel_total += parallel.seconds;
        ++matrices;
        par_table.add_row(
            {spec.name, std::to_string(parallel.shards.size()),
             fmt(serial.seconds, 3), fmt(parallel.seconds, 3),
             fmt(parallel.seconds > 0 ? serial.seconds / parallel.seconds
                                      : 0.0,
                 2)});
        std::cerr << spec.name << " sharded done\n";
    }
    const double speedup =
        parallel_total > 0 ? serial_total / parallel_total : 0.0;
    par_table.render(std::cout);
    std::cout << "total: serial " << fmt(serial_total, 2) << " s, jobs="
              << par_jobs << " " << fmt(parallel_total, 2) << " s, speedup "
              << fmt(speedup, 2) << "x\n";

    const std::string out_path =
        cli.get("out", "BENCH_model_parallel.json");
    std::ofstream out(out_path);
    if (out) {
        out << "{\"bench\": \"model_parallel\", \"jobs\": " << par_jobs
            << ", \"threads\": " << common.threads
            << ", \"matrices\": " << matrices
            << ", \"serial_seconds\": " << serial_total
            << ", \"parallel_seconds\": " << parallel_total
            << ", \"speedup\": " << speedup << "}\n";
        std::cout << "perf point written to " << out_path << "\n";
    } else {
        std::cerr << "cannot write " << out_path << "\n";
    }
    return 0;
}
