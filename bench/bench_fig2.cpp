// Reproduces Fig. 2: distributions (boxplots) over the matrix collection
// of the relative difference in L2 cache misses for each sector-cache
// configuration (L2 ways 2-6 for sector 1, L1 ways none/1/2/3), compared
// to the sector-cache-off baseline, with 48 threads.
//
// All configurations of one matrix are simulated in a single trace pass.
// Matrices whose baseline miss count is below a measurement floor are
// excluded from the distributions, mirroring the paper's restriction to
// matrices with more than 1M nonzeros.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    using namespace spmvcache::bench;

    const CliParser cli(argc, argv);
    print_usage_hint("bench_fig2");
    const auto common = parse_common(cli, /*count=*/8, /*scale=*/0.28);
    const auto min_fills = static_cast<std::uint64_t>(
        cli.get_int("min-fills", 10000));

    std::cout << "Fig. 2: % difference in L2 cache misses vs no sector "
                 "cache, " << common.threads << " threads\n"
              << "(negative = fewer misses; paper: best ~-5% median at 4-5 "
                 "L2 ways, L1 ways do not help)\n\n";

    // Baseline first, then the 5 x 4 grid of the figure.
    std::vector<SectorWays> configs{SectorWays{0, 0}};
    for (std::uint32_t l2 = 2; l2 <= 6; ++l2)
        for (const std::uint32_t l1 : {0u, 1u, 2u, 3u})
            configs.push_back(SectorWays{l2, l1});

    const auto suite = build_suite(common, /*t_min=*/0.5);
    const auto options = experiment_options(common);

    // Per matrix: the per-config % differences, or empty if the baseline
    // miss count is below the measurement floor.
    const std::function<std::vector<double>(const std::string&,
                                            const CsrMatrix&)>
        exp_fn = [&](const std::string&, const CsrMatrix& m) {
            const auto results = run_sector_sweep(m, configs, options);
            std::vector<double> diffs;
            if (results[0].l2.fills() < min_fills) return diffs;
            diffs.reserve(configs.size() - 1);
            for (std::size_t c = 1; c < configs.size(); ++c)
                diffs.push_back(
                    results[c].l2_miss_difference_percent(results[0]));
            return diffs;
        };
    CollectionOptions copts;
    copts.verbose = true;
    copts.host_threads = common.host_threads;
    const auto outcomes =
        run_collection<std::vector<double>>(suite, exp_fn, copts);

    std::size_t measured = 0, floored = 0;
    for (const auto& o : outcomes) {
        if (!o.ok) continue;
        if (o.result.empty())
            ++floored;
        else
            ++measured;
    }
    std::cout << measured << "/" << suite.size() << " matrices in the "
              << "distributions (" << floored
              << " below the baseline-miss floor of " << min_fills << ")\n\n";

    TextTable table(boxplot_headers("config (L2 ways / L1 ways)"));
    std::unique_ptr<CsvWriter> csv;
    if (!common.csv_path.empty())
        csv = std::make_unique<CsvWriter>(
            common.csv_path,
            std::vector<std::string>{"l2_ways", "l1_ways", "matrix",
                                     "diff_percent"});
    for (std::size_t c = 1; c < configs.size(); ++c) {
        std::vector<double> diffs;
        for (const auto& o : outcomes) {
            if (!o.ok || o.result.empty()) continue;
            diffs.push_back(o.result[c - 1]);
            if (csv)
                csv->write_row({std::to_string(configs[c].l2),
                                std::to_string(configs[c].l1), o.name,
                                fmt(o.result[c - 1], 4)});
        }
        if (diffs.empty()) continue;
        const std::string label =
            "L2=" + std::to_string(configs[c].l2) + " L1=" +
            (configs[c].l1 == 0 ? "none" : std::to_string(configs[c].l1));
        table.add_row(boxplot_row(label, diffs));
    }
    table.render(std::cout);
    return 0;
}
