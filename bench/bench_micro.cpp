// Google-benchmark microbenchmarks of the library's hot components:
// reuse-distance engines, the cache simulator, trace generation, the host
// SpMV kernels and the MCS lock.
#include <benchmark/benchmark.h>

#include <vector>

#include "cachesim/hierarchy.hpp"
#include "kernels/spmv.hpp"
#include "kernels/spmv_merge.hpp"
#include "reuse/kim.hpp"
#include "reuse/naive.hpp"
#include "reuse/olken.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "sync/mcs_lock.hpp"
#include "trace/spmv_trace.hpp"
#include "util/prng.hpp"

namespace {

using namespace spmvcache;

std::vector<std::uint64_t> synthetic_trace(std::size_t length,
                                           std::uint64_t distinct) {
    Xoshiro256 rng(7);
    std::vector<std::uint64_t> trace(length);
    for (auto& line : trace) {
        // 70 % hot set, 30 % cold tail: SpMV-like skew.
        line = rng.uniform() < 0.7 ? rng.bounded(distinct / 16 + 1)
                                   : rng.bounded(distinct);
    }
    return trace;
}

template <class Engine>
void engine_benchmark(benchmark::State& state, Engine& engine,
                      const std::vector<std::uint64_t>& trace) {
    for (auto _ : state) {
        for (const auto line : trace)
            benchmark::DoNotOptimize(engine.access(line));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(trace.size()));
}

void BM_ReuseOlken(benchmark::State& state) {
    const auto trace = synthetic_trace(
        1 << 16, static_cast<std::uint64_t>(state.range(0)));
    OlkenEngine engine;
    engine_benchmark(state, engine, trace);
}
BENCHMARK(BM_ReuseOlken)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ReuseKim(benchmark::State& state) {
    const auto trace = synthetic_trace(
        1 << 16, static_cast<std::uint64_t>(state.range(0)));
    KimEngine engine(512);
    engine_benchmark(state, engine, trace);
}
BENCHMARK(BM_ReuseKim)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ReuseNaive(benchmark::State& state) {
    const auto trace = synthetic_trace(
        1 << 12, static_cast<std::uint64_t>(state.range(0)));
    NaiveStackEngine engine;
    engine_benchmark(state, engine, trace);
}
BENCHMARK(BM_ReuseNaive)->Arg(1 << 8)->Arg(1 << 12);

void BM_CacheSimulator(benchmark::State& state) {
    A64fxConfig cfg = a64fx_default();
    cfg.cores = 1;
    MemoryHierarchy sim(cfg);
    const auto trace = synthetic_trace(1 << 16, 1 << 18);
    for (auto _ : state) {
        for (const auto line : trace) sim.demand_access(0, line, 0, false);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_CacheSimulator);

void BM_TraceGeneration(benchmark::State& state) {
    const CsrMatrix m =
        gen::random_uniform(1 << 12, 1 << 12, 32, 3);
    const SpmvLayout layout(m, 256);
    const TraceConfig cfg{state.range(0)};
    for (auto _ : state) {
        std::uint64_t checksum = 0;
        generate_spmv_trace(m, layout, cfg, [&](const MemRef& ref) {
            checksum += ref.line;
        });
        benchmark::DoNotOptimize(checksum);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(spmv_trace_length(m.rows(), m.nnz())));
}
BENCHMARK(BM_TraceGeneration)->Arg(1)->Arg(48);

void BM_SpmvCsr(benchmark::State& state) {
    const CsrMatrix m = gen::stencil_2d_5pt(state.range(0), state.range(0));
    std::vector<double> x(static_cast<std::size_t>(m.cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m.rows()), 0.0);
    for (auto _ : state) {
        spmv_csr(m, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            m.nnz());
}
BENCHMARK(BM_SpmvCsr)->Arg(128)->Arg(512);

void BM_SpmvMerge(benchmark::State& state) {
    const CsrMatrix m = gen::stencil_2d_5pt(512, 512);
    std::vector<double> x(static_cast<std::size_t>(m.cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m.rows()), 0.0);
    for (auto _ : state) {
        spmv_csr_merge(m, x, y, state.range(0));
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            m.nnz());
}
BENCHMARK(BM_SpmvMerge)->Arg(1)->Arg(48);

void BM_McsLock(benchmark::State& state) {
    McsLock lock;
    std::uint64_t counter = 0;
    for (auto _ : state) {
        McsGuard guard(lock);
        benchmark::DoNotOptimize(++counter);
    }
}
BENCHMARK(BM_McsLock);

}  // namespace

BENCHMARK_MAIN();
